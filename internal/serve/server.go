package serve

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"flexile/internal/admit"
	"flexile/internal/obs"
	"flexile/internal/obs/expo"
	"flexile/internal/par"
	flexscheme "flexile/internal/scheme/flexile"
	"flexile/internal/te"
)

// maxRequestBody bounds how much of an allocation request body the server
// will read; a failure state for even the largest supported topology fits
// in far less.
const maxRequestBody = 1 << 20

// Config tunes a Server.
type Config struct {
	// CacheSize is the per-artifact allocation-cache capacity in entries
	// (one entry per scenario). 0 disables caching: every query recomputes
	// (still deduplicated by single-flight). Negative means unbounded.
	CacheSize int
	// Workers bounds concurrent recomputations (par.Workers convention:
	// 0 = NumCPU, negative = 1).
	Workers int
	// Obs receives serving counters; nil falls back to obs.Global().
	Obs *obs.Collector
	// LoadHook, when non-nil, runs at the start of every artifact
	// (re)load with a monotonically increasing attempt number. An error
	// fails the load; tests use it with internal/faultinject to exercise
	// the reload-failure path.
	LoadHook func(attempt int) error
	// Log receives structured access records (one per request, sampled by
	// LogEvery) and lifecycle events (artifact loads, reload failures, gate
	// saturation). Nil disables logging entirely — the request hot path
	// then takes no logging branches at all.
	Log *slog.Logger
	// LogEvery samples access records: n > 1 logs one request in every n.
	// 0 and 1 log every request. Lifecycle events are never sampled.
	LogEvery int

	// --- overload resilience (DESIGN.md §13) ---

	// DefaultDeadline applies to allocation queries that carry no
	// X-Request-Deadline header. A deadline bounds the whole request: on
	// arrival, a cache miss whose predicted gate wait already exceeds it
	// is shed with 503 + Retry-After; once admitted, the wait for the
	// shared recomputation is cut off at the deadline. 0 means no
	// deadline — requests queue indefinitely (the pre-admission
	// behavior).
	DefaultDeadline time.Duration
	// TenantRate and TenantBurst configure per-tenant token-bucket
	// quotas keyed on the X-Tenant header; requests without the header
	// share one fair-share default bucket. TenantRate <= 0 disables
	// quotas. TenantBurst below 1 is clamped to 1.
	TenantRate  float64
	TenantBurst float64
	// BreakerThreshold consecutive failures trip a circuit breaker; 0
	// disables both breakers. The recompute breaker opens after that
	// many consecutive Online failures and short-circuits misses into
	// degraded (stale) answers; the reload breaker opens after that many
	// consecutive reload failures and suppresses further reload attempts
	// until BreakerCooldown has passed (then admits one probe).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a half-open probe. 0 defaults to 5s.
	BreakerCooldown time.Duration
	// ComputeHook, when non-nil, runs at the start of every Online
	// recomputation with the scenario index; a returned error (or panic)
	// fails the recomputation. The chaos harness uses it with
	// internal/faultinject to script slow and failing solves.
	ComputeHook func(scenario int) error

	// --- multi-artifact registry + batch API (DESIGN.md §14) ---

	// MaxBatch bounds how many queries one POST /v1/alloc/batch request
	// may carry. 0 means DefaultMaxBatch; negative is clamped to 1.
	MaxBatch int
	// DefaultArtifact names the registry entry that answers requests
	// carrying no artifact name (no X-Flexile-Artifact header, bare
	// /v1/... path). Only a Registry reads it; a single-artifact Server
	// is its own default. Empty means: the sole artifact when the
	// registry holds exactly one, otherwise named addressing is required.
	DefaultArtifact string

	// --- request-scoped tracing (DESIGN.md §16) ---

	// Ring receives finished request traces and backs GET /debug/requests.
	// Nil disables request tracing entirely (requests still get an
	// X-Request-Id). A Registry shares one ring across its artifact
	// servers.
	Ring *obs.TraceRing
	// TraceEvery samples request tracing: n > 1 traces one request in
	// every n, 1 (or any negative value) traces every request, and 0
	// picks DefaultTraceEvery — sampling is the h-trace-overhead budget's
	// lever, amortizing the per-trace cost below 2% of a warm-cache hit.
	// An incoming traceparent with the sampled flag always forces tracing
	// regardless of TraceEvery.
	TraceEvery int
}

// DefaultTraceEvery is the production trace sampling rate: one request in
// every 16 (plus every request arriving with a sampled traceparent). Dense
// enough that /debug/requests is always populated on a busy server, sparse
// enough that tracing stays within its ≤2% warm-path overhead budget
// (hypotheses/h-trace-overhead).
const DefaultTraceEvery = 16

func (c Config) maxBatch() int {
	switch {
	case c.MaxBatch == 0:
		return DefaultMaxBatch
	case c.MaxBatch < 0:
		return 1
	}
	return c.MaxBatch
}

func (c Config) collector() *obs.Collector {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Global()
}

// state is everything derived from one loaded artifact. A reload builds a
// complete new state and swaps the pointer; in-flight requests finish
// against the state they started with, so a swap can never mix two
// artifacts' data, and the old state's cache dies with it.
type state struct {
	art      *Artifact
	inst     *te.Instance
	off      *flexscheme.OfflineResult
	opt      flexscheme.Options
	checksum string
	loadedAt time.Time
	// scenIndex maps a canonical failed-edge key to a scenario index.
	scenIndex map[string]int
	cache     *lruCache
	flight    par.Flight[int, []byte]
}

// Server answers allocation queries from a loaded artifact. It is an
// http.Handler; see Routes for the endpoint list.
type Server struct {
	cfg  Config
	path string
	mux  *http.ServeMux
	gate *par.Gate

	// base outlives any single request: detached recomputations queue on
	// the gate under it, so a client disconnect cannot cancel the solve
	// other waiters are riding. Close cancels it at server teardown.
	base       context.Context
	cancelBase context.CancelFunc

	// quota and the two breakers are nil when disabled in Config — the
	// admit package's nil receivers admit everything.
	quota         *admit.Quota
	compBreaker   *admit.Breaker
	reloadBreaker *admit.Breaker

	// stale is the last-known-good store backing degraded responses:
	// failedKey → the last successfully computed response bytes, kept
	// across artifact swaps and recompute failures. Entries are only
	// served with an explicit X-Flexile-Degraded marker when the live
	// path cannot answer (stale-while-revalidate).
	staleMu sync.RWMutex
	stale   map[string][]byte

	reloadMu  sync.Mutex // serializes Reload (attempt numbering + swap order)
	attempts  int
	reloading atomic.Bool // true while a (re)load is decoding — /readyz says 503
	draining  atomic.Bool // true after BeginDrain — /readyz says 503 for LB drain
	logSeq    atomic.Int64
	traceSeq  atomic.Int64
	st        atomicState
}

// atomicState is a tiny wrapper so Server needs no generics import just
// for atomic.Pointer[state].
type atomicState struct {
	mu sync.RWMutex
	s  *state
}

func (a *atomicState) load() *state {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.s
}

func (a *atomicState) store(s *state) {
	a.mu.Lock()
	a.s = s
	a.mu.Unlock()
}

// New loads the artifact at path and returns a ready server. The initial
// load uses the same validation and hook path as SIGHUP reloads.
func New(path string, cfg Config) (*Server, error) {
	s := &Server{
		cfg:   cfg,
		path:  path,
		gate:  par.NewGate(cfg.Workers),
		quota: admit.NewQuota(admit.QuotaConfig{Rate: cfg.TenantRate, Burst: cfg.TenantBurst}),
		stale: make(map[string][]byte),
	}
	bcfg := admit.BreakerConfig{Threshold: cfg.BreakerThreshold, Cooldown: cfg.BreakerCooldown}
	s.compBreaker = admit.NewBreaker(bcfg)
	s.reloadBreaker = admit.NewBreaker(bcfg)
	s.base, s.cancelBase = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("GET /v1/alloc", s.handleAlloc)
	s.mux.HandleFunc("POST /v1/alloc", s.handleAlloc)
	s.mux.HandleFunc("POST /v1/alloc/batch", s.handleBatch)
	if err := s.Reload(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- request ids and access logging ---

// reqIDPrefix makes request ids unique across processes; the per-process
// counter makes them unique within one.
var reqIDPrefix = func() string {
	b := make([]byte, 6)
	rand.Read(b)
	return hex.EncodeToString(b)
}()

var reqIDSeq atomic.Uint64

func nextRequestID() string {
	return reqIDPrefix + "-" + strconv.FormatUint(reqIDSeq.Add(1), 10)
}

// accessRecorder captures the response status and size for the access log;
// handlers that know more (the allocation path) type-assert their
// ResponseWriter back to it and fill in the query-shaped fields.
type accessRecorder struct {
	http.ResponseWriter
	status   int
	bytes    int
	scenario int    // matched scenario index, -1 when none
	cache    string // hit | miss | shared | none
}

func (a *accessRecorder) WriteHeader(code int) {
	if a.status == 0 {
		a.status = code
	}
	a.ResponseWriter.WriteHeader(code)
}

func (a *accessRecorder) Write(b []byte) (int, error) {
	if a.status == 0 {
		a.status = http.StatusOK
	}
	n, err := a.ResponseWriter.Write(b)
	a.bytes += n
	return n, err
}

// ServeHTTP implements http.Handler. Every request gets an X-Request-Id
// (the caller's, else a generated one) echoed in the response, tracing or
// logging configured or not, so shed responses stay correlatable. Sampled
// requests additionally get a request trace (Config.Ring, DESIGN.md §16)
// and, with logging configured, one structured access record per LogEvery.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid, tr, r2 := beginRequest(s.cfg, &s.traceSeq, w, r)
	lg := s.cfg.Log
	logged := lg != nil && (s.cfg.LogEvery <= 1 || s.logSeq.Add(1)%int64(s.cfg.LogEvery) == 0)
	if !logged && tr == nil {
		s.mux.ServeHTTP(w, r2)
		return
	}
	rec := &accessRecorder{ResponseWriter: w, scenario: -1, cache: "none"}
	start := time.Now()
	s.mux.ServeHTTP(rec, r2)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	if logged {
		attrs := []slog.Attr{
			slog.String("request_id", rid),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("scenario", rec.scenario),
			slog.String("cache", rec.cache),
			slog.Int("status", rec.status),
			slog.Int("bytes", rec.bytes),
			slog.Duration("dur", time.Since(start)),
		}
		if tr != nil {
			attrs = append(attrs, slog.String("trace_id", tr.TraceID))
		}
		lg.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	}
	endRequest(s.cfg, tr, rec)
}

// ErrReloadSuppressed wraps reload attempts short-circuited by the open
// reload breaker: after BreakerThreshold consecutive reload failures the
// server stops re-reading and re-validating the (presumably still broken)
// artifact file until the cooldown admits a probe. The previous artifact
// keeps serving throughout.
var ErrReloadSuppressed = errors.New("serve: reload suppressed by open breaker")

// Reload re-reads the artifact file, validates it, and atomically swaps it
// in. On any failure — including a panic while decoding or instantiating —
// the previous artifact keeps serving and the error is returned. The
// allocation cache starts empty after a successful reload. When the reload
// breaker is open the attempt is suppressed entirely (no file read, no
// LoadHook) and a wrapped ErrReloadSuppressed is returned.
func (s *Server) Reload() (err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if ok, retry := s.reloadBreaker.Allow(); !ok {
		if c := s.cfg.collector(); c != nil {
			c.AddServe(obs.ServeMetrics{ReloadsSkipped: 1})
		}
		if lg := s.cfg.Log; lg != nil {
			lg.LogAttrs(context.Background(), slog.LevelWarn, "reload suppressed",
				slog.String("path", s.path),
				slog.Duration("retry_after", retry))
		}
		return fmt.Errorf("%w (retry in %v)", ErrReloadSuppressed, retry)
	}
	s.reloading.Store(true)
	s.attempts++
	attempt := s.attempts
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: reload panic: %v", r)
		}
		s.reloading.Store(false)
		var tripped bool
		if err != nil {
			tripped = s.reloadBreaker.Failure()
		} else {
			s.reloadBreaker.Success()
		}
		if c := s.cfg.collector(); c != nil {
			d := obs.ServeMetrics{Reloads: 1}
			if err != nil {
				d.ReloadErrors = 1
			}
			if tripped {
				d.BreakerTrips = 1
			}
			c.AddServe(d)
		}
		if tripped {
			if lg := s.cfg.Log; lg != nil {
				lg.LogAttrs(context.Background(), slog.LevelError, "reload breaker opened",
					slog.Int("attempt", attempt),
					slog.String("path", s.path))
			}
		}
		if lg := s.cfg.Log; lg != nil {
			if err != nil {
				lg.LogAttrs(context.Background(), slog.LevelError, "artifact load failed",
					slog.Int("attempt", attempt),
					slog.String("path", s.path),
					slog.String("error", err.Error()))
			} else if st := s.st.load(); st != nil {
				lg.LogAttrs(context.Background(), slog.LevelInfo, "artifact loaded",
					slog.Int("attempt", attempt),
					slog.String("path", s.path),
					slog.String("topology", st.art.TopoName),
					slog.String("checksum", st.checksum),
					slog.Int("scenarios", len(st.art.Scenarios)))
			}
		}
	}()
	if hook := s.cfg.LoadHook; hook != nil {
		if herr := hook(attempt); herr != nil {
			return fmt.Errorf("serve: load hook: %w", herr)
		}
	}
	data, rerr := os.ReadFile(s.path)
	if rerr != nil {
		return fmt.Errorf("serve: read artifact: %w", rerr)
	}
	st, berr := newState(data, s.cfg.CacheSize)
	if berr != nil {
		return berr
	}
	s.st.store(st)
	return nil
}

func newState(data []byte, cacheSize int) (*state, error) {
	art, err := Decode(data)
	if err != nil {
		return nil, err
	}
	inst, off, opt, err := art.Instantiate()
	if err != nil {
		return nil, err
	}
	st := &state{
		art:       art,
		inst:      inst,
		off:       off,
		opt:       opt,
		checksum:  art.Checksum(),
		loadedAt:  time.Now(),
		scenIndex: make(map[string]int, len(art.Scenarios)),
		cache:     newLRUCache(cacheSize),
	}
	for q, sc := range art.Scenarios {
		st.scenIndex[failedKey(sc.Failed)] = q
	}
	return st, nil
}

// WatchHUP installs a SIGHUP handler that reloads the artifact until stop
// is called. Reload errors are reported through onErr (which may be nil)
// and leave the previous artifact serving.
func (s *Server) WatchHUP(onErr func(error)) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-ch:
				if err := s.Reload(); err != nil && onErr != nil {
					onErr(err)
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			<-finished
		})
	}
}

// BeginDrain flips /readyz to 503 so load balancers stop routing new
// traffic here, while /v1/alloc keeps answering in-flight and straggler
// queries. Call it on SIGINT/SIGTERM *before* http.Server.Shutdown: the
// readiness probe goes dark first, the LB drains, and only then are
// connections torn down.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		if lg := s.cfg.Log; lg != nil {
			lg.LogAttrs(context.Background(), slog.LevelInfo, "draining",
				slog.String("reason", "readiness flipped to 503 ahead of shutdown"))
		}
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close cancels the server's base context, releasing any detached
// recomputations still queued on the gate. Call it after the HTTP
// listener has shut down; the server must not serve requests afterwards.
func (s *Server) Close() { s.cancelBase() }

// --- stale last-known-good store (degraded responses) ---

// staleCap bounds the last-known-good store. Keys are enumerated failure
// states, so the bound is a safety net against pathological artifact
// churn, not a working-set limit.
const staleCap = 65536

func (s *Server) staleGet(key string) ([]byte, bool) {
	s.staleMu.RLock()
	defer s.staleMu.RUnlock()
	b, ok := s.stale[key]
	return b, ok
}

func (s *Server) stalePut(key string, body []byte) {
	s.staleMu.Lock()
	defer s.staleMu.Unlock()
	if _, exists := s.stale[key]; !exists && len(s.stale) >= staleCap {
		// At capacity: drop an arbitrary entry. Losing a stale answer only
		// costs a future degraded response, never a correct one.
		for k := range s.stale {
			delete(s.stale, k)
			break
		}
	}
	s.stale[key] = body
}

// --- request parsing ---

// AllocRequest is a failure-state allocation query: the set of failed
// edges, canonicalized (sorted, deduplicated) by the parsers.
type AllocRequest struct {
	Failed []int `json:"failed"`
}

// ErrBadRequest is wrapped by every request-parse failure.
var ErrBadRequest = errors.New("serve: bad request")

// ParseRequest parses a JSON allocation-request body. Arbitrary bytes
// yield a wrapped ErrBadRequest, never a panic; edge ids are validated
// non-negative and bounded, then sorted and deduplicated.
func ParseRequest(data []byte) (*AllocRequest, error) {
	if len(data) > maxRequestBody {
		return nil, fmt.Errorf("%w: body of %d bytes exceeds %d", ErrBadRequest, len(data), maxRequestBody)
	}
	var req AllocRequest
	d := json.NewDecoder(strings.NewReader(string(data)))
	d.DisallowUnknownFields()
	if err := d.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if d.More() {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if err := canonicalize(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// ParseQuery parses the GET form of an allocation query: a "failed"
// parameter holding a comma-separated edge list ("" or absent means no
// failures). Same guarantees as ParseRequest.
func ParseQuery(failed string) (*AllocRequest, error) {
	req := &AllocRequest{}
	if failed != "" {
		for _, part := range strings.Split(failed, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("%w: failed edge %q: %v", ErrBadRequest, part, err)
			}
			req.Failed = append(req.Failed, v)
		}
	}
	if err := canonicalize(req); err != nil {
		return nil, err
	}
	return req, nil
}

func canonicalize(req *AllocRequest) error {
	if len(req.Failed) > maxEdges {
		return fmt.Errorf("%w: %d failed edges exceeds %d", ErrBadRequest, len(req.Failed), maxEdges)
	}
	for _, e := range req.Failed {
		if e < 0 || e >= maxEdges {
			return fmt.Errorf("%w: edge id %d out of range", ErrBadRequest, e)
		}
	}
	sort.Ints(req.Failed)
	out := req.Failed[:0]
	for i, e := range req.Failed {
		if i == 0 || e != req.Failed[i-1] {
			out = append(out, e)
		}
	}
	req.Failed = out
	return nil
}

// failedKey canonicalizes a sorted failed-edge list into a map key.
func failedKey(failed []int) string {
	if len(failed) == 0 {
		return ""
	}
	var b strings.Builder
	for i, e := range failed {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(e))
	}
	return b.String()
}

// --- handlers ---

// AllocResponse is the JSON allocation answer. Frac and X carry the exact
// float64 values te.MaxMin produced (Go's JSON encoding is shortest-form
// round-trip exact), so two servers loading the same artifact — or the
// server and a direct library call — produce byte-identical bodies.
type AllocResponse struct {
	// Scenario is the matched scenario index.
	Scenario int `json:"scenario"`
	// Prob is that scenario's probability.
	Prob float64 `json:"prob"`
	// Frac[f] is the fraction of demand allocated to flow f.
	Frac []float64 `json:"frac"`
	// X[k][i][t] is the per-tunnel allocation.
	X [][][]float64 `json:"x"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"ok": true}
	if st := s.st.load(); st != nil {
		resp["version"] = ArtifactVersion
		resp["checksum"] = st.checksum
		resp["loaded_at"] = st.loadedAt.UTC().Format(time.RFC3339Nano)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleReady is the readiness probe, distinct from the /healthz liveness
// probe: not-ready (503 with a JSON reason) before the first artifact has
// decoded, while a hot reload is decoding a replacement, and after
// BeginDrain; the previous artifact keeps answering /v1/alloc throughout,
// so load balancers drain traffic without dropping in-flight queries.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "draining"})
		return
	}
	if s.reloading.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "artifact reload in progress"})
		return
	}
	st := s.st.load()
	if st == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "no artifact loaded"})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"ready": true, "checksum": st.checksum})
}

// handleMetrics renders the Prometheus exposition page: the collector's
// epoch-consistent snapshot, live server gauges, and Go runtime telemetry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", expo.ContentType)
	expo.WritePage(w, s.cfg.collector(), s.extraMetrics)
}

// MetricsHandler exposes the /metrics page as a standalone handler so an
// admin listener can mount it next to pprof without routing application
// traffic.
func (s *Server) MetricsHandler() http.Handler { return http.HandlerFunc(s.handleMetrics) }

// extraMetrics appends point-in-time gauges over live server state to a
// metrics page — values outside the Collector because they are levels, not
// deltas.
func (s *Server) extraMetrics(e *expo.Encoder) {
	st := s.st.load()
	ready := 0.0
	if st != nil && !s.reloading.Load() && !s.draining.Load() {
		ready = 1
	}
	e.Gauge("flexile_serve_ready", "Whether /readyz currently reports ready.", ready)
	e.Gauge("flexile_serve_gate_in_use", "Recomputation-gate slots currently held.", float64(s.gate.InUse()))
	e.Gauge("flexile_serve_gate_capacity", "Total recomputation-gate slots.", float64(s.gate.Cap()))
	e.Gauge("flexile_serve_gate_waiters", "Recomputations currently queued for a gate slot.", float64(s.gate.Waiters()))
	e.Gauge("flexile_serve_gate_estimated_wait_seconds", "Predicted queue wait for a new arrival (EWMA of hold times).", s.gate.EstimatedWait().Seconds())
	if s.quota != nil {
		e.Gauge("flexile_serve_quota_tenants", "Tenant token buckets currently tracked.", float64(s.quota.Tenants()))
	}
	if s.compBreaker != nil && s.reloadBreaker != nil {
		e.GaugeVec("flexile_serve_breaker_state", "Circuit-breaker state (0 closed, 1 open, 2 half-open).",
			[]float64{float64(s.compBreaker.State()), float64(s.reloadBreaker.State())},
			[][]expo.Label{
				{{Name: "breaker", Value: "recompute"}},
				{{Name: "breaker", Value: "reload"}},
			})
	}
	if st != nil {
		e.Gauge("flexile_serve_cache_entries", "Allocation-cache entries resident.", float64(st.cache.len()))
		e.Gauge("flexile_serve_flight_in_flight", "Distinct scenarios with a recomputation in flight.", float64(st.flight.InFlight()))
		e.Gauge("flexile_artifact_info", "Identity of the loaded serving artifact (value is always 1).", 1,
			expo.Label{Name: "version", Value: strconv.Itoa(ArtifactVersion)},
			expo.Label{Name: "checksum", Value: st.checksum},
			expo.Label{Name: "topology", Value: st.art.TopoName})
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	st := s.st.load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"topology":  st.art.TopoName,
		"version":   ArtifactVersion,
		"checksum":  st.checksum,
		"loaded_at": st.loadedAt.UTC().Format(time.RFC3339Nano),
		"nodes":     st.art.NumNodes,
		"edges":     len(st.art.Edges),
		"classes":   len(st.art.Classes),
		"pairs":     len(st.art.Pairs),
		"scenarios": len(st.art.Scenarios),
		"gamma":     st.art.Gamma,
	})
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	st := s.st.load()
	type scen struct {
		Index  int     `json:"index"`
		Prob   float64 `json:"prob"`
		Failed []int   `json:"failed"`
	}
	out := make([]scen, len(st.art.Scenarios))
	for q, sc := range st.art.Scenarios {
		failed := sc.Failed
		if failed == nil {
			failed = []int{}
		}
		out[q] = scen{Index: q, Prob: sc.Prob, Failed: failed}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// writeShed refuses a request at admission: Retry-After carries the
// backoff hint in whole seconds, X-Flexile-Shed names the admission stage
// that refused (quota | deadline | breaker) so clients and the chaos
// harness can tell the paths apart.
func writeShed(w http.ResponseWriter, code int, reason string, retryAfter time.Duration, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(admit.RetryAfterSeconds(retryAfter)))
	w.Header().Set("X-Flexile-Shed", reason)
	writeError(w, code, msg)
}

// allocResult is the outcome of one allocation query after admission —
// independent of how it is written back. The single-request handler maps
// it onto the PR 7 wire format verbatim (headers and bodies unchanged);
// the batch handler embeds it as one entry of the envelope, so the two
// paths cannot drift apart.
type allocResult struct {
	status   int
	body     []byte        // marshaled AllocResponse; nil unless status 200
	errMsg   string        // error text; "" unless status != 200
	cache    string        // hit | miss | shared | stale | "" (non-200)
	shed     string        // quota | deadline | breaker | "" (not shed)
	retry    time.Duration // Retry-After hint when shed != ""
	degraded bool          // body came from the stale last-known-good store
	scenario int           // matched scenario index, -1 when none
}

// allocate runs the post-parse stages of the staged admission pipeline
// (DESIGN.md §13) for one canonical failure-state query against one loaded
// state:
//
//  1. scenario lookup → 404
//  2. cache hit → answer immediately
//  3. deadline-aware admission: predicted gate wait > deadline → 503 shed
//  4. recompute-breaker short circuit → stale degraded answer or 503
//  5. detached single-flight recompute; the caller waits at most waitCtx,
//     the computation itself always completes
//
// Disposition counters accumulate into d (the caller flushes them), so one
// batch request can account many queries with a single collector add.
func (s *Server) allocate(waitCtx context.Context, st *state, req *AllocRequest, deadline time.Duration, d *obs.ServeMetrics, lap *lapper) allocResult {
	key := failedKey(req.Failed)
	q, ok := st.scenIndex[key]
	if !ok {
		d.BadRequests++
		lap.Lap("cache", obs.LatStageCache)
		return allocResult{status: http.StatusNotFound, scenario: -1,
			errMsg: fmt.Sprintf("no enumerated scenario matches failed edges %v", req.Failed)}
	}

	if body, ok := st.cache.get(q); ok {
		d.CacheHits++
		lap.Lap("cache", obs.LatStageCache)
		return allocResult{status: http.StatusOK, scenario: q, cache: "hit", body: body}
	}
	d.CacheMisses++
	lap.Lap("cache", obs.LatStageCache)
	// Everything from here to the return — admission, breaker, and the
	// single-flight wait — is the "flight" stage.
	defer lap.Lap("flight", obs.LatStageFlight)

	// Deadline-aware admission: a miss that would queue past its deadline
	// is refused now, while the refusal is still cheap, instead of
	// occupying a waiter slot to certain failure.
	if deadline > 0 {
		if est := s.gate.EstimatedWait(); est > deadline {
			d.DeadlineShed++
			return allocResult{status: http.StatusServiceUnavailable, scenario: q, shed: "deadline", retry: est,
				errMsg: fmt.Sprintf("predicted queue wait %v exceeds request deadline %v", est, deadline)}
		}
	}

	// Recompute breaker: while open, don't touch the failing solve path —
	// serve the last known good answer, explicitly marked degraded, or
	// shed if this failure state has never been answered.
	if ok, retry := s.compBreaker.Allow(); !ok {
		d.BreakerRejects++
		if stale, degOK := s.staleGet(key); degOK {
			d.Degraded++
			return allocResult{status: http.StatusOK, scenario: q, cache: "stale", degraded: true, body: stale}
		}
		return allocResult{status: http.StatusServiceUnavailable, scenario: q, shed: "breaker", retry: retry,
			errMsg: "recompute breaker open and no stale answer for this failure state"}
	}

	// Admitted. The wait is bounded by the request deadline and the client
	// connection; the recomputation itself runs detached under the
	// server's lifetime, so neither a disconnect nor a deadline can fail
	// the computation other waiters are riding (or waste the solve — the
	// result still lands in the cache).
	body, cerr, shared := st.flight.DoDetached(waitCtx, q, func() ([]byte, error) {
		return s.recompute(st, q, key, lap.tr)
	})
	if shared {
		d.FlightShared++
	}
	if cerr != nil {
		if errors.Is(cerr, context.DeadlineExceeded) || errors.Is(cerr, context.Canceled) {
			// Deadline or client gone while waiting; the detached solve
			// continues for whoever asks next.
			d.DeadlineExpired++
			return allocResult{status: http.StatusServiceUnavailable, scenario: q, shed: "deadline", retry: s.gate.EstimatedWait(),
				errMsg: "deadline expired before the allocation completed"}
		}
		// The recomputation itself failed: degrade to the last known good
		// answer when one exists.
		if stale, degOK := s.staleGet(key); degOK {
			d.Degraded++
			return allocResult{status: http.StatusOK, scenario: q, cache: "stale", degraded: true, body: stale}
		}
		return allocResult{status: http.StatusInternalServerError, scenario: q, errMsg: cerr.Error()}
	}
	cache := "miss"
	if shared {
		cache = "shared"
	}
	return allocResult{status: http.StatusOK, scenario: q, cache: cache, body: body}
}

// writeResult renders an allocResult in the single-request wire format —
// exactly the headers and bodies the pre-batch server produced.
func (s *Server) writeResult(w http.ResponseWriter, rec *accessRecorder, res allocResult) {
	if res.shed != "" {
		writeShed(w, res.status, res.shed, res.retry, res.errMsg)
		return
	}
	if res.status != http.StatusOK {
		writeError(w, res.status, res.errMsg)
		return
	}
	if res.degraded {
		s.serveDegraded(w, rec, res.body)
		return
	}
	if rec != nil {
		rec.cache = res.cache
	}
	hdr := "miss"
	if res.cache == "hit" {
		hdr = "hit"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Flexile-Cache", hdr)
	w.Write(res.body)
}

// handleAlloc is the allocation query path, staged so overload is refused
// as early and cheaply as possible (DESIGN.md §13):
//
//  1. tenant quota (token bucket, X-Tenant) → 429 + Retry-After
//  2. deadline parse (X-Request-Deadline, -default-deadline)
//  3. request parse (unchanged)
//  4. allocate: lookup → cache → deadline admission → breaker → flight
func (s *Server) handleAlloc(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	col := s.cfg.collector()
	var d obs.ServeMetrics
	d.Requests = 1
	defer func() {
		if col != nil {
			col.AddServe(d)
			col.ObserveLatency(obs.LatServeRequest, time.Since(start))
		}
	}()
	rec, _ := w.(*accessRecorder) // non-nil only on logged or traced requests
	lap := &lapper{tr: obs.ReqTraceFrom(r.Context()), col: col, last: start}
	finish := func(res allocResult) {
		if rec != nil && res.scenario >= 0 {
			rec.scenario = res.scenario
		}
		s.writeResult(w, rec, res)
		lap.Lap("write", obs.LatStageWrite)
	}

	if ok, retry := s.quota.Allow(r.Header.Get("X-Tenant")); !ok {
		d.QuotaRejects = 1
		lap.Lap("admit", obs.LatStageAdmit)
		finish(allocResult{status: http.StatusTooManyRequests, scenario: -1, shed: "quota", retry: retry,
			errMsg: "tenant quota exceeded"})
		return
	}
	deadline, derr := admit.ParseDeadline(r.Header.Get("X-Request-Deadline"), s.cfg.DefaultDeadline)
	if derr != nil {
		d.BadRequests = 1
		lap.Lap("admit", obs.LatStageAdmit)
		finish(allocResult{status: http.StatusBadRequest, scenario: -1, errMsg: derr.Error()})
		return
	}
	lap.Lap("admit", obs.LatStageAdmit)

	var req *AllocRequest
	var err error
	if r.Method == http.MethodPost {
		body, rerr := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
		if rerr != nil {
			d.BadRequests = 1
			lap.Lap("parse", obs.LatStageParse)
			finish(allocResult{status: http.StatusBadRequest, scenario: -1, errMsg: "reading body: " + rerr.Error()})
			return
		}
		req, err = ParseRequest(body)
	} else {
		req, err = ParseQuery(r.URL.Query().Get("failed"))
	}
	if err != nil {
		d.BadRequests = 1
		lap.Lap("parse", obs.LatStageParse)
		finish(allocResult{status: http.StatusBadRequest, scenario: -1, errMsg: err.Error()})
		return
	}
	lap.Lap("parse", obs.LatStageParse)

	waitCtx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithDeadline(waitCtx, start.Add(deadline))
		defer cancel()
	}
	finish(s.allocate(waitCtx, s.st.load(), req, deadline, &d, lap))
}

// serveDegraded answers from the last-known-good store: HTTP 200 with the
// explicit X-Flexile-Degraded marker so clients can tell a stale answer
// (possibly computed from a previous artifact) from a live one.
func (s *Server) serveDegraded(w http.ResponseWriter, rec *accessRecorder, body []byte) {
	if rec != nil {
		rec.cache = "stale"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Flexile-Cache", "stale")
	w.Header().Set("X-Flexile-Degraded", "stale")
	w.Write(body)
}

// recompute is the detached single-flight executor for one scenario: it
// queues on the gate under the server's base context (never a request's),
// runs the Online solve, feeds the recompute breaker, and on success
// fills both the per-artifact cache and the last-known-good store — side
// effects that land even if every waiter has already given up. Counters
// are flushed directly to the collector because the executor can outlive
// the request whose handler spawned it; tr is the leading waiter's trace
// (possibly nil) and receives nested queue/recompute spans, which no-op
// if that request has already finished.
func (s *Server) recompute(st *state, q int, key string, tr *obs.ReqTrace) ([]byte, error) {
	col := s.cfg.collector()
	if !s.gate.TryEnter() {
		if col != nil {
			col.AddServe(obs.ServeMetrics{GateWaits: 1})
		}
		if lg := s.cfg.Log; lg != nil {
			lg.LogAttrs(context.Background(), slog.LevelDebug, "gate saturated",
				slog.Int("scenario", q),
				slog.Int("capacity", s.gate.Cap()),
				slog.Int("waiters", s.gate.Waiters()))
		}
		queued := time.Now()
		if gerr := s.gate.Enter(s.base); gerr != nil {
			return nil, fmt.Errorf("serve: server closed while queued for recompute: %w", gerr)
		}
		if col != nil {
			col.ObserveLatency(obs.LatQueueWait, time.Since(queued))
		}
		tr.AddSpan("queue", queued, time.Now(), true)
	}
	entered := time.Now()
	defer func() {
		s.gate.ObserveHold(time.Since(entered))
		s.gate.Leave()
	}()

	var body []byte
	err := func() (rerr error) {
		// A panicking solve must still feed the breaker, so recover here
		// rather than leaving it to the flight's safety net.
		defer func() {
			if r := recover(); r != nil {
				rerr = fmt.Errorf("serve: recompute panic: %v", r)
			}
		}()
		if hook := s.cfg.ComputeHook; hook != nil {
			if herr := hook(q); herr != nil {
				return herr
			}
		}
		var cerr error
		body, cerr = computeAlloc(st, q)
		return cerr
	}()
	solved := time.Now()
	if col != nil {
		col.ObserveLatency(obs.LatStageRecompute, solved.Sub(entered))
	}
	tr.AddSpan("recompute", entered, solved, true)
	if err != nil {
		tripped := s.compBreaker.Failure()
		if col != nil {
			dm := obs.ServeMetrics{RecomputeErrors: 1}
			if tripped {
				dm.BreakerTrips = 1
			}
			col.AddServe(dm)
		}
		if tripped {
			if lg := s.cfg.Log; lg != nil {
				lg.LogAttrs(context.Background(), slog.LevelError, "recompute breaker opened",
					slog.Int("scenario", q),
					slog.String("error", err.Error()))
			}
		}
		return nil, err
	}
	s.compBreaker.Success()
	if col != nil {
		col.AddServe(obs.ServeMetrics{Recomputes: 1})
	}
	st.cache.put(q, body)
	s.stalePut(key, body)
	return body, nil
}

// computeAlloc runs the online allocation for scenario q and marshals the
// response once; the cached bytes are served verbatim thereafter, so hits
// and misses are bit-identical by construction.
func computeAlloc(st *state, q int) ([]byte, error) {
	res, err := flexscheme.Online(st.inst, st.off, q, st.opt)
	if err != nil {
		return nil, err
	}
	return json.Marshal(AllocResponse{
		Scenario: q,
		Prob:     st.art.Scenarios[q].Prob,
		Frac:     res.Frac,
		X:        res.X,
	})
}

// --- allocation cache ---

// lruCache is a size-bounded scenario→response cache. capacity 0 disables
// it (get always misses, put is a no-op); negative capacity is unbounded.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[int]*list.Element
}

type lruEntry struct {
	key  int
	body []byte
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{capacity: capacity, ll: list.New(), items: make(map[int]*list.Element)}
}

func (c *lruCache) get(key int) ([]byte, bool) {
	if c.capacity == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

func (c *lruCache) put(key int, body []byte) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	if c.capacity > 0 && c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
