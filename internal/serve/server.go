package serve

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"flexile/internal/obs"
	"flexile/internal/obs/expo"
	"flexile/internal/par"
	flexscheme "flexile/internal/scheme/flexile"
	"flexile/internal/te"
)

// maxRequestBody bounds how much of an allocation request body the server
// will read; a failure state for even the largest supported topology fits
// in far less.
const maxRequestBody = 1 << 20

// Config tunes a Server.
type Config struct {
	// CacheSize is the per-artifact allocation-cache capacity in entries
	// (one entry per scenario). 0 disables caching: every query recomputes
	// (still deduplicated by single-flight). Negative means unbounded.
	CacheSize int
	// Workers bounds concurrent recomputations (par.Workers convention:
	// 0 = NumCPU, negative = 1).
	Workers int
	// Obs receives serving counters; nil falls back to obs.Global().
	Obs *obs.Collector
	// LoadHook, when non-nil, runs at the start of every artifact
	// (re)load with a monotonically increasing attempt number. An error
	// fails the load; tests use it with internal/faultinject to exercise
	// the reload-failure path.
	LoadHook func(attempt int) error
	// Log receives structured access records (one per request, sampled by
	// LogEvery) and lifecycle events (artifact loads, reload failures, gate
	// saturation). Nil disables logging entirely — the request hot path
	// then takes no logging branches at all.
	Log *slog.Logger
	// LogEvery samples access records: n > 1 logs one request in every n.
	// 0 and 1 log every request. Lifecycle events are never sampled.
	LogEvery int
}

func (c Config) collector() *obs.Collector {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Global()
}

// state is everything derived from one loaded artifact. A reload builds a
// complete new state and swaps the pointer; in-flight requests finish
// against the state they started with, so a swap can never mix two
// artifacts' data, and the old state's cache dies with it.
type state struct {
	art      *Artifact
	inst     *te.Instance
	off      *flexscheme.OfflineResult
	opt      flexscheme.Options
	checksum string
	loadedAt time.Time
	// scenIndex maps a canonical failed-edge key to a scenario index.
	scenIndex map[string]int
	cache     *lruCache
	flight    par.Flight[int, []byte]
}

// Server answers allocation queries from a loaded artifact. It is an
// http.Handler; see Routes for the endpoint list.
type Server struct {
	cfg  Config
	path string
	mux  *http.ServeMux
	gate *par.Gate

	reloadMu  sync.Mutex // serializes Reload (attempt numbering + swap order)
	attempts  int
	reloading atomic.Bool // true while a (re)load is decoding — /readyz says 503
	logSeq    atomic.Int64
	st        atomicState
}

// atomicState is a tiny wrapper so Server needs no generics import just
// for atomic.Pointer[state].
type atomicState struct {
	mu sync.RWMutex
	s  *state
}

func (a *atomicState) load() *state {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.s
}

func (a *atomicState) store(s *state) {
	a.mu.Lock()
	a.s = s
	a.mu.Unlock()
}

// New loads the artifact at path and returns a ready server. The initial
// load uses the same validation and hook path as SIGHUP reloads.
func New(path string, cfg Config) (*Server, error) {
	s := &Server{cfg: cfg, path: path, gate: par.NewGate(cfg.Workers)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("GET /v1/alloc", s.handleAlloc)
	s.mux.HandleFunc("POST /v1/alloc", s.handleAlloc)
	if err := s.Reload(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- request ids and access logging ---

// reqIDPrefix makes request ids unique across processes; the per-process
// counter makes them unique within one.
var reqIDPrefix = func() string {
	b := make([]byte, 6)
	rand.Read(b)
	return hex.EncodeToString(b)
}()

var reqIDSeq atomic.Uint64

func nextRequestID() string {
	return reqIDPrefix + "-" + strconv.FormatUint(reqIDSeq.Add(1), 10)
}

// accessRecorder captures the response status and size for the access log;
// handlers that know more (the allocation path) type-assert their
// ResponseWriter back to it and fill in the query-shaped fields.
type accessRecorder struct {
	http.ResponseWriter
	status   int
	bytes    int
	scenario int    // matched scenario index, -1 when none
	cache    string // hit | miss | shared | none
}

func (a *accessRecorder) WriteHeader(code int) {
	if a.status == 0 {
		a.status = code
	}
	a.ResponseWriter.WriteHeader(code)
}

func (a *accessRecorder) Write(b []byte) (int, error) {
	if a.status == 0 {
		a.status = http.StatusOK
	}
	n, err := a.ResponseWriter.Write(b)
	a.bytes += n
	return n, err
}

// ServeHTTP implements http.Handler. With logging configured it emits one
// structured access record per sampled request, propagating or generating
// an X-Request-Id; with cfg.Log nil it is a straight dispatch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	lg := s.cfg.Log
	if lg == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	rid := r.Header.Get("X-Request-Id")
	if n := s.cfg.LogEvery; n > 1 && s.logSeq.Add(1)%int64(n) != 0 {
		// Unsampled: still echo a caller-supplied request id for tracing.
		if rid != "" {
			w.Header().Set("X-Request-Id", rid)
		}
		s.mux.ServeHTTP(w, r)
		return
	}
	if rid == "" {
		rid = nextRequestID()
	}
	w.Header().Set("X-Request-Id", rid)
	rec := &accessRecorder{ResponseWriter: w, scenario: -1, cache: "none"}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	lg.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("request_id", rid),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("scenario", rec.scenario),
		slog.String("cache", rec.cache),
		slog.Int("status", rec.status),
		slog.Int("bytes", rec.bytes),
		slog.Duration("dur", time.Since(start)),
	)
}

// Reload re-reads the artifact file, validates it, and atomically swaps it
// in. On any failure — including a panic while decoding or instantiating —
// the previous artifact keeps serving and the error is returned. The
// allocation cache starts empty after a successful reload.
func (s *Server) Reload() (err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.reloading.Store(true)
	s.attempts++
	attempt := s.attempts
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: reload panic: %v", r)
		}
		s.reloading.Store(false)
		if c := s.cfg.collector(); c != nil {
			d := obs.ServeMetrics{Reloads: 1}
			if err != nil {
				d.ReloadErrors = 1
			}
			c.AddServe(d)
		}
		if lg := s.cfg.Log; lg != nil {
			if err != nil {
				lg.LogAttrs(context.Background(), slog.LevelError, "artifact load failed",
					slog.Int("attempt", attempt),
					slog.String("path", s.path),
					slog.String("error", err.Error()))
			} else if st := s.st.load(); st != nil {
				lg.LogAttrs(context.Background(), slog.LevelInfo, "artifact loaded",
					slog.Int("attempt", attempt),
					slog.String("path", s.path),
					slog.String("topology", st.art.TopoName),
					slog.String("checksum", st.checksum),
					slog.Int("scenarios", len(st.art.Scenarios)))
			}
		}
	}()
	if hook := s.cfg.LoadHook; hook != nil {
		if herr := hook(attempt); herr != nil {
			return fmt.Errorf("serve: load hook: %w", herr)
		}
	}
	data, rerr := os.ReadFile(s.path)
	if rerr != nil {
		return fmt.Errorf("serve: read artifact: %w", rerr)
	}
	st, berr := newState(data, s.cfg.CacheSize)
	if berr != nil {
		return berr
	}
	s.st.store(st)
	return nil
}

func newState(data []byte, cacheSize int) (*state, error) {
	art, err := Decode(data)
	if err != nil {
		return nil, err
	}
	inst, off, opt, err := art.Instantiate()
	if err != nil {
		return nil, err
	}
	st := &state{
		art:       art,
		inst:      inst,
		off:       off,
		opt:       opt,
		checksum:  art.Checksum(),
		loadedAt:  time.Now(),
		scenIndex: make(map[string]int, len(art.Scenarios)),
		cache:     newLRUCache(cacheSize),
	}
	for q, sc := range art.Scenarios {
		st.scenIndex[failedKey(sc.Failed)] = q
	}
	return st, nil
}

// WatchHUP installs a SIGHUP handler that reloads the artifact until stop
// is called. Reload errors are reported through onErr (which may be nil)
// and leave the previous artifact serving.
func (s *Server) WatchHUP(onErr func(error)) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-ch:
				if err := s.Reload(); err != nil && onErr != nil {
					onErr(err)
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			<-finished
		})
	}
}

// --- request parsing ---

// AllocRequest is a failure-state allocation query: the set of failed
// edges, canonicalized (sorted, deduplicated) by the parsers.
type AllocRequest struct {
	Failed []int `json:"failed"`
}

// ErrBadRequest is wrapped by every request-parse failure.
var ErrBadRequest = errors.New("serve: bad request")

// ParseRequest parses a JSON allocation-request body. Arbitrary bytes
// yield a wrapped ErrBadRequest, never a panic; edge ids are validated
// non-negative and bounded, then sorted and deduplicated.
func ParseRequest(data []byte) (*AllocRequest, error) {
	if len(data) > maxRequestBody {
		return nil, fmt.Errorf("%w: body of %d bytes exceeds %d", ErrBadRequest, len(data), maxRequestBody)
	}
	var req AllocRequest
	d := json.NewDecoder(strings.NewReader(string(data)))
	d.DisallowUnknownFields()
	if err := d.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if d.More() {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if err := canonicalize(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// ParseQuery parses the GET form of an allocation query: a "failed"
// parameter holding a comma-separated edge list ("" or absent means no
// failures). Same guarantees as ParseRequest.
func ParseQuery(failed string) (*AllocRequest, error) {
	req := &AllocRequest{}
	if failed != "" {
		for _, part := range strings.Split(failed, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("%w: failed edge %q: %v", ErrBadRequest, part, err)
			}
			req.Failed = append(req.Failed, v)
		}
	}
	if err := canonicalize(req); err != nil {
		return nil, err
	}
	return req, nil
}

func canonicalize(req *AllocRequest) error {
	if len(req.Failed) > maxEdges {
		return fmt.Errorf("%w: %d failed edges exceeds %d", ErrBadRequest, len(req.Failed), maxEdges)
	}
	for _, e := range req.Failed {
		if e < 0 || e >= maxEdges {
			return fmt.Errorf("%w: edge id %d out of range", ErrBadRequest, e)
		}
	}
	sort.Ints(req.Failed)
	out := req.Failed[:0]
	for i, e := range req.Failed {
		if i == 0 || e != req.Failed[i-1] {
			out = append(out, e)
		}
	}
	req.Failed = out
	return nil
}

// failedKey canonicalizes a sorted failed-edge list into a map key.
func failedKey(failed []int) string {
	if len(failed) == 0 {
		return ""
	}
	var b strings.Builder
	for i, e := range failed {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(e))
	}
	return b.String()
}

// --- handlers ---

// AllocResponse is the JSON allocation answer. Frac and X carry the exact
// float64 values te.MaxMin produced (Go's JSON encoding is shortest-form
// round-trip exact), so two servers loading the same artifact — or the
// server and a direct library call — produce byte-identical bodies.
type AllocResponse struct {
	// Scenario is the matched scenario index.
	Scenario int `json:"scenario"`
	// Prob is that scenario's probability.
	Prob float64 `json:"prob"`
	// Frac[f] is the fraction of demand allocated to flow f.
	Frac []float64 `json:"frac"`
	// X[k][i][t] is the per-tunnel allocation.
	X [][][]float64 `json:"x"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"ok": true}
	if st := s.st.load(); st != nil {
		resp["version"] = ArtifactVersion
		resp["checksum"] = st.checksum
		resp["loaded_at"] = st.loadedAt.UTC().Format(time.RFC3339Nano)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleReady is the readiness probe, distinct from the /healthz liveness
// probe: not-ready (503 with a JSON reason) before the first artifact has
// decoded and while a hot reload is decoding a replacement; the previous
// artifact keeps answering /v1/alloc throughout, so load balancers drain
// traffic without dropping in-flight queries.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.reloading.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "artifact reload in progress"})
		return
	}
	st := s.st.load()
	if st == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "no artifact loaded"})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"ready": true, "checksum": st.checksum})
}

// handleMetrics renders the Prometheus exposition page: the collector's
// epoch-consistent snapshot, live server gauges, and Go runtime telemetry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", expo.ContentType)
	expo.WritePage(w, s.cfg.collector(), s.extraMetrics)
}

// MetricsHandler exposes the /metrics page as a standalone handler so an
// admin listener can mount it next to pprof without routing application
// traffic.
func (s *Server) MetricsHandler() http.Handler { return http.HandlerFunc(s.handleMetrics) }

// extraMetrics appends point-in-time gauges over live server state to a
// metrics page — values outside the Collector because they are levels, not
// deltas.
func (s *Server) extraMetrics(e *expo.Encoder) {
	st := s.st.load()
	ready := 0.0
	if st != nil && !s.reloading.Load() {
		ready = 1
	}
	e.Gauge("flexile_serve_ready", "Whether /readyz currently reports ready.", ready)
	e.Gauge("flexile_serve_gate_in_use", "Recomputation-gate slots currently held.", float64(s.gate.InUse()))
	e.Gauge("flexile_serve_gate_capacity", "Total recomputation-gate slots.", float64(s.gate.Cap()))
	if st != nil {
		e.Gauge("flexile_serve_cache_entries", "Allocation-cache entries resident.", float64(st.cache.len()))
		e.Gauge("flexile_serve_flight_in_flight", "Distinct scenarios with a recomputation in flight.", float64(st.flight.InFlight()))
		e.Gauge("flexile_artifact_info", "Identity of the loaded serving artifact (value is always 1).", 1,
			expo.Label{Name: "version", Value: strconv.Itoa(ArtifactVersion)},
			expo.Label{Name: "checksum", Value: st.checksum},
			expo.Label{Name: "topology", Value: st.art.TopoName})
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	st := s.st.load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"topology":  st.art.TopoName,
		"version":   ArtifactVersion,
		"checksum":  st.checksum,
		"loaded_at": st.loadedAt.UTC().Format(time.RFC3339Nano),
		"nodes":     st.art.NumNodes,
		"edges":     len(st.art.Edges),
		"classes":   len(st.art.Classes),
		"pairs":     len(st.art.Pairs),
		"scenarios": len(st.art.Scenarios),
		"gamma":     st.art.Gamma,
	})
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	st := s.st.load()
	type scen struct {
		Index  int     `json:"index"`
		Prob   float64 `json:"prob"`
		Failed []int   `json:"failed"`
	}
	out := make([]scen, len(st.art.Scenarios))
	for q, sc := range st.art.Scenarios {
		failed := sc.Failed
		if failed == nil {
			failed = []int{}
		}
		out[q] = scen{Index: q, Prob: sc.Prob, Failed: failed}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleAlloc(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var d obs.ServeMetrics
	d.Requests = 1
	defer func() {
		if c := s.cfg.collector(); c != nil {
			c.AddServe(d)
			c.ObserveLatency(obs.LatServeRequest, time.Since(start))
		}
	}()
	rec, _ := w.(*accessRecorder) // non-nil only on sampled, logged requests

	var req *AllocRequest
	var err error
	if r.Method == http.MethodPost {
		body, rerr := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
		if rerr != nil {
			d.BadRequests = 1
			writeError(w, http.StatusBadRequest, "reading body: "+rerr.Error())
			return
		}
		req, err = ParseRequest(body)
	} else {
		req, err = ParseQuery(r.URL.Query().Get("failed"))
	}
	if err != nil {
		d.BadRequests = 1
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	st := s.st.load()
	q, ok := st.scenIndex[failedKey(req.Failed)]
	if !ok {
		d.BadRequests = 1
		writeError(w, http.StatusNotFound, fmt.Sprintf("no enumerated scenario matches failed edges %v", req.Failed))
		return
	}
	if rec != nil {
		rec.scenario = q
	}

	if body, ok := st.cache.get(q); ok {
		d.CacheHits = 1
		if rec != nil {
			rec.cache = "hit"
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Flexile-Cache", "hit")
		w.Write(body)
		return
	}
	d.CacheMisses = 1

	body, cerr, shared := st.flight.Do(q, func() ([]byte, error) {
		if !s.gate.TryEnter() {
			// Saturated: count the queueing and wait for a slot.
			d.GateWaits = 1
			if lg := s.cfg.Log; lg != nil {
				lg.LogAttrs(r.Context(), slog.LevelDebug, "gate saturated",
					slog.Int("scenario", q),
					slog.Int("capacity", s.gate.Cap()))
			}
			if gerr := s.gate.Enter(r.Context()); gerr != nil {
				return nil, gerr
			}
		}
		defer s.gate.Leave()
		return computeAlloc(st, q)
	})
	if shared {
		d.FlightShared = 1
	} else {
		d.Recomputes = 1
	}
	if cerr != nil {
		writeError(w, http.StatusInternalServerError, cerr.Error())
		return
	}
	if !shared {
		st.cache.put(q, body)
	}
	if rec != nil {
		if shared {
			rec.cache = "shared"
		} else {
			rec.cache = "miss"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Flexile-Cache", "miss")
	w.Write(body)
}

// computeAlloc runs the online allocation for scenario q and marshals the
// response once; the cached bytes are served verbatim thereafter, so hits
// and misses are bit-identical by construction.
func computeAlloc(st *state, q int) ([]byte, error) {
	res, err := flexscheme.Online(st.inst, st.off, q, st.opt)
	if err != nil {
		return nil, err
	}
	return json.Marshal(AllocResponse{
		Scenario: q,
		Prob:     st.art.Scenarios[q].Prob,
		Frac:     res.Frac,
		X:        res.X,
	})
}

// --- allocation cache ---

// lruCache is a size-bounded scenario→response cache. capacity 0 disables
// it (get always misses, put is a no-op); negative capacity is unbounded.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[int]*list.Element
}

type lruEntry struct {
	key  int
	body []byte
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{capacity: capacity, ll: list.New(), items: make(map[int]*list.Element)}
}

func (c *lruCache) get(key int) ([]byte, bool) {
	if c.capacity == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

func (c *lruCache) put(key int, body []byte) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	if c.capacity > 0 && c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
