package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"flexile/internal/obs"
	flexscheme "flexile/internal/scheme/flexile"
)

// TestEndToEndBitIdentical is the offline→artifact→server pipeline proof:
// the allocation served over a real loopback listener is byte-for-byte the
// JSON encoding of the library's Online result, for every enumerated
// scenario, whether it came from a cold recomputation, a warm cache, or a
// server with caching disabled.
func TestEndToEndBitIdentical(t *testing.T) {
	path, inst, off, opt := writeArtifact(t)

	collector := obs.New()
	cached, err := New(path, Config{CacheSize: 64, Obs: collector})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := New(path, Config{CacheSize: 0, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	tsCached := httptest.NewServer(cached)
	defer tsCached.Close()
	tsUncached := httptest.NewServer(uncached)
	defer tsUncached.Close()

	for q, scen := range inst.Scenarios {
		res, err := flexscheme.Online(inst, off, q, opt)
		if err != nil {
			t.Fatalf("library Online(%d): %v", q, err)
		}
		want, err := json.Marshal(AllocResponse{Scenario: q, Prob: scen.Prob, Frac: res.Frac, X: res.X})
		if err != nil {
			t.Fatal(err)
		}

		var parts []string
		for _, e := range scen.Failed {
			parts = append(parts, strconv.Itoa(e))
		}
		url := "/v1/alloc?failed=" + strings.Join(parts, ",")

		// Cold miss, warm hit, cache-disabled, and POST form: all four
		// bodies must be bit-identical to the library result.
		cold := get(t, tsCached.URL+url, "miss")
		warm := get(t, tsCached.URL+url, "hit")
		nocache := get(t, tsUncached.URL+url, "miss")
		posted := post(t, tsCached.URL+"/v1/alloc", fmt.Sprintf(`{"failed":[%s]}`, strings.Join(parts, ",")), "hit")
		for name, got := range map[string][]byte{"cold": cold, "warm": warm, "no-cache": nocache, "post": posted} {
			if !bytes.Equal(got, want) {
				t.Fatalf("scenario %d (%s): served body differs from library Online\n got: %s\nwant: %s", q, name, got, want)
			}
		}
	}

	// The uncached server must also agree with itself across repeats.
	repeat1 := get(t, tsUncached.URL+"/v1/alloc?failed=", "miss")
	repeat2 := get(t, tsUncached.URL+"/v1/alloc?failed=", "miss")
	if !bytes.Equal(repeat1, repeat2) {
		t.Fatal("cache-disabled server is not deterministic across repeats")
	}

	snap := collector.Snapshot()
	s := snap.Serve
	if s.CacheHits == 0 || s.CacheMisses == 0 || s.Requests != s.CacheHits+s.CacheMisses {
		t.Fatalf("cache counters inconsistent: %+v", s)
	}
	lat := snap.Latency.ServeRequest
	if lat.Count != uint64(s.Requests) || lat.Sum <= 0 {
		t.Fatalf("request latency histogram inconsistent with counters: %+v vs %+v", lat, s)
	}
	var inBuckets uint64
	for _, b := range lat.Buckets {
		inBuckets += b
	}
	if inBuckets != lat.Count {
		t.Fatalf("latency buckets sum %d != count %d", inBuckets, lat.Count)
	}
}

func get(t *testing.T, url, wantCache string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Flexile-Cache"); got != wantCache {
		t.Fatalf("GET %s: cache status %q, want %q", url, got, wantCache)
	}
	return body
}

func post(t *testing.T, url, body, wantCache string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s %s: %d %s", url, body, resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Flexile-Cache"); got != wantCache {
		t.Fatalf("POST %s: cache status %q, want %q", url, got, wantCache)
	}
	return out
}

func TestServerEndpoints(t *testing.T) {
	path, inst, _, _ := writeArtifact(t)
	srv, err := New(path, Config{CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	var info map[string]any
	resp, err = http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info["topology"] != inst.Topo.Name || int(info["scenarios"].(float64)) != len(inst.Scenarios) {
		t.Fatalf("info = %v", info)
	}
	if info["checksum"] == "" || int(info["version"].(float64)) != ArtifactVersion {
		t.Fatalf("info missing checksum/version: %v", info)
	}

	var scens []struct {
		Index  int     `json:"index"`
		Prob   float64 `json:"prob"`
		Failed []int   `json:"failed"`
	}
	resp, err = http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&scens); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(scens) != len(inst.Scenarios) {
		t.Fatalf("scenarios endpoint returned %d entries, want %d", len(scens), len(inst.Scenarios))
	}
	for q, sc := range scens {
		if sc.Index != q || sc.Prob != inst.Scenarios[q].Prob || sc.Failed == nil {
			t.Fatalf("scenario %d = %+v", q, sc)
		}
	}

	// Error paths: unmatched failure state, malformed query, bad body.
	for _, c := range []struct {
		url  string
		code int
	}{
		{"/v1/alloc?failed=0,1,2,0", http.StatusOK},     // dedup → the all-failed scenario
		{"/v1/alloc?failed=7", http.StatusNotFound},     // valid id, no matching scenario
		{"/v1/alloc?failed=abc", http.StatusBadRequest}, // malformed
		{"/v1/alloc?failed=-3", http.StatusBadRequest},  // negative
		{"/v1/allocate", http.StatusNotFound},           // unknown route
	} {
		resp, err := http.Get(ts.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("GET %s = %d, want %d", c.url, resp.StatusCode, c.code)
		}
	}
	resp, err = http.Post(ts.URL+"/v1/alloc", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST garbage = %d, want 400", resp.StatusCode)
	}
}

func TestReloadSwapsAtomically(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	collector := obs.New()
	srv, err := New(path, Config{CacheSize: 8, Obs: collector})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := get(t, ts.URL+"/v1/alloc?failed=0", "miss")

	// Corrupt the file: reload must fail and keep the old artifact serving.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err == nil {
		t.Fatal("reload of corrupt artifact must fail")
	}
	after := get(t, ts.URL+"/v1/alloc?failed=0", "hit")
	if !bytes.Equal(before, after) {
		t.Fatal("failed reload changed the served allocation")
	}

	// Restore a valid artifact: reload succeeds and the cache starts cold.
	s, err := solvedTriangle()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, s.blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err != nil {
		t.Fatalf("reload of valid artifact: %v", err)
	}
	fresh := get(t, ts.URL+"/v1/alloc?failed=0", "miss") // cold cache proves the swap
	if !bytes.Equal(before, fresh) {
		t.Fatal("reloaded artifact serves a different allocation for the same state")
	}

	m := collector.Snapshot().Serve
	// New() counts the initial load: 3 reloads total, 1 failed.
	if m.Reloads != 3 || m.ReloadErrors != 1 {
		t.Fatalf("reload counters = %+v, want 3 reloads / 1 error", m)
	}
}
