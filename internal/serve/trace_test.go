package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flexile/internal/obs"
)

func newTracedServer(t *testing.T, every int) *Server {
	t.Helper()
	path, _, _, _ := writeArtifact(t)
	srv, err := New(path, Config{
		CacheSize:  8,
		Workers:    2,
		Ring:       obs.NewTraceRing(0, 0, 0),
		TraceEvery: every,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestTracedMissRequest drives one cold /v1/alloc through a traced server
// and checks the resulting /debug/requests entry end to end: identity
// headers, the joined traceparent, the named stage spans, and the tiling
// invariant — non-nested span durations sum to (approximately) the served
// latency.
func TestTracedMissRequest(t *testing.T) {
	srv := newTracedServer(t, 1)
	sentTrace := strings.Repeat("ab", 16)
	sentSpan := strings.Repeat("cd", 8)

	req := httptest.NewRequest(http.MethodGet, "/v1/alloc?failed=1", nil)
	req.Header.Set("X-Request-Id", "req-trace-test")
	req.Header.Set("X-Tenant", "tenant-a")
	req.Header.Set("traceparent", "00-"+sentTrace+"-"+sentSpan+"-01")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)

	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Request-Id"); got != "req-trace-test" {
		t.Fatalf("request id not echoed: %q", got)
	}
	tp := w.Header().Get("traceparent")
	if !strings.HasPrefix(tp, "00-"+sentTrace+"-") {
		t.Fatalf("response traceparent %q did not keep our trace id", tp)
	}
	if strings.Contains(tp, sentSpan) {
		t.Fatalf("response traceparent %q reuses the caller's span id", tp)
	}

	recent := srv.cfg.Ring.Recent()
	if len(recent) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(recent))
	}
	s := recent[0]
	if s.TraceID != sentTrace || s.ParentSpan != sentSpan || s.RequestID != "req-trace-test" {
		t.Fatalf("trace identity: trace=%s parent=%s req=%s", s.TraceID, s.ParentSpan, s.RequestID)
	}
	if s.Tenant != "tenant-a" || s.Method != "GET" || s.Path != "/v1/alloc" || s.Cache != "miss" {
		t.Fatalf("trace summary: %+v", s)
	}

	var tiling time.Duration
	seen := map[string]bool{}
	for _, sp := range s.Spans {
		seen[sp.Name] = true
		if !sp.Nested {
			tiling += sp.Dur
		}
	}
	for _, name := range []string{"admit", "parse", "cache", "flight", "write", "recompute"} {
		if !seen[name] {
			t.Errorf("missing stage span %q (have %v)", name, s.Spans)
		}
	}
	if tiling > s.Dur || tiling < s.Dur/2 {
		t.Fatalf("tiling spans sum to %v, served latency %v", tiling, s.Dur)
	}
}

// TestTraceSampling checks the 1-in-N default path and the sampled-parent
// override.
func TestTraceSampling(t *testing.T) {
	srv := newTracedServer(t, 4)
	for i := 0; i < 8; i++ {
		w := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/alloc?failed=0", nil)
		srv.ServeHTTP(w, req)
		if w.Header().Get("X-Request-Id") == "" {
			t.Fatal("untraced request lost its id")
		}
	}
	if got := srv.cfg.Ring.Total(); got != 2 {
		t.Fatalf("1-in-4 sampling traced %d of 8", got)
	}

	// A sampled incoming traceparent forces tracing regardless of the rate.
	req := httptest.NewRequest(http.MethodGet, "/v1/alloc?failed=0", nil)
	req.Header.Set("traceparent", "00-"+strings.Repeat("1f", 16)+"-"+strings.Repeat("2e", 8)+"-01")
	srv.ServeHTTP(httptest.NewRecorder(), req)
	if got := srv.cfg.Ring.Total(); got != 3 {
		t.Fatalf("sampled parent not forced: total %d", got)
	}

	// An unsampled parent does not force tracing.
	req = httptest.NewRequest(http.MethodGet, "/v1/alloc?failed=0", nil)
	req.Header.Set("traceparent", "00-"+strings.Repeat("1f", 16)+"-"+strings.Repeat("2e", 8)+"-00")
	srv.ServeHTTP(httptest.NewRecorder(), req)
	if got := srv.cfg.Ring.Total(); got != 3 {
		t.Fatalf("unsampled parent forced a trace: total %d", got)
	}
}

// TestBatchTraceSpans checks that a traceparent on POST /v1/alloc/batch
// survives the fan-out: one trace covers the envelope with a nested
// per-group span for every unique failure state.
func TestBatchTraceSpans(t *testing.T) {
	srv := newTracedServer(t, 1)
	sentTrace := strings.Repeat("4d", 16)
	body := `{"queries":[{"failed":[1]},{"failed":[2]},{"failed":[1]}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/alloc/batch", strings.NewReader(body))
	req.Header.Set("traceparent", "00-"+sentTrace+"-"+strings.Repeat("5c", 8)+"-01")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("batch answered %d queries", len(resp.Results))
	}

	recent := srv.cfg.Ring.Recent()
	if len(recent) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(recent))
	}
	s := recent[0]
	if s.TraceID != sentTrace {
		t.Fatalf("batch trace id %s, want %s", s.TraceID, sentTrace)
	}
	groups := 0
	for _, sp := range s.Spans {
		if sp.Nested && strings.HasPrefix(sp.Name, "cache:") {
			groups++
		}
	}
	if groups != 2 {
		t.Fatalf("batch trace has %d per-group spans, want 2 (deduped from 3 queries): %+v", groups, s.Spans)
	}
}

// TestDebugRequestsHandler covers the three renderings, the escaping of
// hostile tenant strings, and the error paths (no ring, unknown format).
func TestDebugRequestsHandler(t *testing.T) {
	srv := newTracedServer(t, 1)
	hostile := `<script>alert('x')</script>`
	req := httptest.NewRequest(http.MethodGet, "/v1/alloc?failed=1", nil)
	req.Header.Set("X-Tenant", hostile)
	srv.ServeHTTP(httptest.NewRecorder(), req)

	h := srv.DebugRequestsHandler()
	get := func(target string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
		return w
	}

	html := get("/debug/requests")
	if html.Code != http.StatusOK {
		t.Fatalf("html status %d", html.Code)
	}
	page := html.Body.String()
	if !strings.Contains(page, "flexile request traces") {
		t.Fatal("html page missing title")
	}
	if strings.Contains(page, hostile) {
		t.Fatal("hostile tenant string reached the page unescaped")
	}
	if !strings.Contains(page, "&lt;script&gt;") {
		t.Fatal("escaped tenant string not rendered")
	}

	js := get("/debug/requests?format=json")
	var ring struct {
		Total  uint64              `json:"total"`
		Recent []obs.TraceSnapshot `json:"recent"`
	}
	if err := json.Unmarshal(js.Body.Bytes(), &ring); err != nil {
		t.Fatalf("json rendering: %v", err)
	}
	if ring.Total != 1 || len(ring.Recent) != 1 || ring.Recent[0].Tenant != hostile {
		t.Fatalf("json ring: total=%d recent=%d", ring.Total, len(ring.Recent))
	}

	chrome := get("/debug/requests?format=chrome")
	var timeline struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Body.Bytes(), &timeline); err != nil {
		t.Fatalf("chrome rendering: %v", err)
	}
	if len(timeline.TraceEvents) < 6 {
		t.Fatalf("chrome timeline has %d events", len(timeline.TraceEvents))
	}

	if w := get("/debug/requests?format=bogus"); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d", w.Code)
	}

	// With no ring configured the page answers 404, not an empty page.
	path, _, _, _ := writeArtifact(t)
	bare, err := New(path, Config{CacheSize: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	w := httptest.NewRecorder()
	bare.DebugRequestsHandler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/requests", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("no-ring handler: status %d", w.Code)
	}
}

// TestRingEvictionUnderLoad hammers a tiny ring through the real serving
// path and checks the eviction order is newest-first by request id.
func TestRingEvictionUnderLoad(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	srv, err := New(path, Config{
		CacheSize:  8,
		Workers:    2,
		Ring:       obs.NewTraceRing(4, 2, 2),
		TraceEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 10; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/alloc?failed=0", nil)
		req.Header.Set("X-Request-Id", fmt.Sprintf("load-%d", i))
		srv.ServeHTTP(httptest.NewRecorder(), req)
	}
	recent := srv.cfg.Ring.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	for i, s := range recent {
		if want := fmt.Sprintf("load-%d", 9-i); s.RequestID != want {
			t.Fatalf("recent[%d] = %s, want %s", i, s.RequestID, want)
		}
	}
	if total := srv.cfg.Ring.Total(); total != 10 {
		t.Fatalf("Total %d, want 10", total)
	}
}
