package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"flexile/internal/obs"
)

func TestParseBatchRequest(t *testing.T) {
	good, err := ParseBatchRequest([]byte(`{"queries":[{"failed":[2,0,2]},{"artifact":"ibm","failed":[]}]}`), 0)
	if err != nil {
		t.Fatalf("ParseBatchRequest: %v", err)
	}
	if !reflect.DeepEqual(good.Queries[0].Failed, []int{0, 2}) {
		t.Errorf("failed set not canonicalized: %v", good.Queries[0].Failed)
	}
	if good.Queries[1].Artifact != "ibm" || len(good.Queries[1].Failed) != 0 {
		t.Errorf("query 1 mangled: %+v", good.Queries[1])
	}

	bad := []string{
		``,
		`null`,
		`{}`,
		`{"queries":[]}`,
		`[]`,
		`{"queries":[{"failed":[0]}]}trailing`,
		`{"queries":[{"failed":[0]}],"extra":1}`,
		`{"queries":[{"failed":[-1]}]}`,
		`{"queries":[{"failed":[0],"unknown":true}]}`,
		fmt.Sprintf(`{"queries":[%s{"failed":[0]}]}`, strings.Repeat(`{"failed":[0]},`, DefaultMaxBatch)),
	}
	for _, in := range bad {
		if _, err := ParseBatchRequest([]byte(in), 0); !errors.Is(err, ErrBadRequest) {
			t.Errorf("ParseBatchRequest(%.40q) = %v, want ErrBadRequest", in, err)
		}
	}

	// maxBatch == 2 admits exactly 2 queries and rejects 3.
	if _, err := ParseBatchRequest([]byte(`{"queries":[{"failed":[]},{"failed":[]}]}`), 2); err != nil {
		t.Errorf("2 queries at limit 2: %v", err)
	}
	if _, err := ParseBatchRequest([]byte(`{"queries":[{"failed":[]},{"failed":[]},{"failed":[]}]}`), 2); !errors.Is(err, ErrBadRequest) {
		t.Errorf("3 queries at limit 2: %v, want ErrBadRequest", err)
	}
}

// TestServerBatch exercises POST /v1/alloc/batch on a standalone server:
// entry bodies bit-identical to GET, dedup labeling, per-entry 404s for
// unknown artifacts and unenumerated scenarios, and the batch counters.
func TestServerBatch(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	col := obs.New()
	s, err := New(path, Config{CacheSize: 64, Workers: 2, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	want0 := getAlloc(t, ts.URL+"/v1/alloc", nil, nil)
	want02 := getAlloc(t, ts.URL+"/v1/alloc", []int{0, 2}, nil)

	results := postBatch(t, ts.URL+"/v1/alloc/batch", []BatchQuery{
		{Failed: []int{}},
		{Failed: []int{0, 2}},
		{Failed: []int{2, 0}},           // dedup of the previous entry
		{Artifact: "nope", Failed: nil}, // unknown artifact on a single-artifact server
		{Failed: []int{0, 1, 2}},        // all three links down, enumerated by the triangle fixture
	})
	if !bytes.Equal([]byte(results[0].Body), want0) {
		t.Error("entry 0 body diverged from GET")
	}
	if results[0].Cache != "hit" && results[0].Cache != "miss" && results[0].Cache != "shared" {
		t.Errorf("entry 0 cache = %q", results[0].Cache)
	}
	if !bytes.Equal([]byte(results[1].Body), want02) {
		t.Error("entry 1 body diverged from GET")
	}
	if results[1].Cache != "hit" {
		t.Errorf("entry 1 cache = %q, want hit (warmed by the GET oracle)", results[1].Cache)
	}
	if results[2].Cache != "dedup" || !bytes.Equal([]byte(results[2].Body), want02) {
		t.Errorf("entry 2 = cache %q, want dedup with identical body", results[2].Cache)
	}
	if results[3].Status != http.StatusNotFound || results[3].Error == "" || results[3].Scenario != -1 {
		t.Errorf("unknown-artifact entry = %+v, want 404 with error", results[3])
	}
	if results[4].Status != http.StatusOK {
		t.Errorf("entry 4 status = %d (%s)", results[4].Status, results[4].Error)
	}

	sm := col.Snapshot().Serve
	if sm.BatchRequests != 1 {
		t.Errorf("BatchRequests = %d, want 1", sm.BatchRequests)
	}
	if sm.BatchEntries != 5 {
		t.Errorf("BatchEntries = %d, want 5", sm.BatchEntries)
	}
	if sm.BatchDeduped != 1 {
		t.Errorf("BatchDeduped = %d, want 1", sm.BatchDeduped)
	}
	// 4 of the 5 entries resolved to the server (the unknown-artifact one
	// never reached it), so per-entry accounting matches single requests:
	// 2 from the GET oracle + 4 batch entries.
	if sm.Requests != 6 {
		t.Errorf("Requests = %d, want 6 (2 GET + 4 resolved batch entries)", sm.Requests)
	}

	// Envelope rejections: malformed body and oversized batch are 400s
	// with the stable error shape.
	for _, body := range []string{`{"queries":[`, `{"queries":[{"failed":[-1]}]}`} {
		resp, err := http.Post(ts.URL+"/v1/alloc/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Errorf("envelope rejection body not stable error JSON: %v %+v", err, e)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed envelope status = %d, want 400", resp.StatusCode)
		}
	}
}

// TestBatchQuotaPerEntry proves quota semantics apply per entry: a batch
// wider than the tenant's burst gets exactly burst admitted entries and
// the rest shed as quota 429s inside a 200 envelope.
func TestBatchQuotaPerEntry(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	s, err := New(path, Config{CacheSize: 64, Workers: 2, Obs: obs.New(), TenantRate: 0.001, TenantBurst: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	queries := make([]BatchQuery, 8)
	for i := range queries {
		queries[i] = BatchQuery{Failed: []int{i % 3}}
	}
	body, _ := json.Marshal(BatchRequest{Queries: queries})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/alloc/batch", bytes.NewReader(body))
	req.Header.Set("X-Tenant", "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	var ok, quota int
	for _, e := range env.Results {
		switch {
		case e.Status == http.StatusOK:
			ok++
		case e.Status == http.StatusTooManyRequests && e.Shed == "quota" && e.RetryAfter >= 1:
			quota++
		default:
			t.Errorf("unexpected entry: %+v", e)
		}
	}
	if ok != 3 || quota != 5 {
		t.Errorf("ok=%d quota=%d, want 3 admitted (burst) and 5 shed", ok, quota)
	}
}

// TestBatchConcurrentRaceClean hammers single and batch paths together;
// under -race this is the race-cleanliness half of the e2e contract.
func TestBatchConcurrentRaceClean(t *testing.T) {
	t.Parallel()
	dir := writeRegistryDir(t, "alpha", "beta")
	reg, err := NewRegistry(dir, Config{CacheSize: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(reg)
	defer ts.Close()

	scens := getScenarios(t, ts.URL+"/v1/artifacts/alpha/scenarios")
	want := make([][]byte, len(scens))
	for q, failed := range scens {
		want[q] = getAlloc(t, ts.URL+"/v1/artifacts/alpha/alloc", failed, nil)
	}

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := (c + i) % len(scens)
				if c%2 == 0 {
					got := getAlloc(t, ts.URL+"/v1/artifacts/alpha/alloc", scens[q], nil)
					if !bytes.Equal(got, want[q]) {
						t.Errorf("single response diverged for scenario %d", q)
						return
					}
					continue
				}
				results := postBatch(t, ts.URL+"/v1/alloc/batch", []BatchQuery{
					{Artifact: "alpha", Failed: scens[q]},
					{Artifact: "beta", Failed: scens[q]},
					{Artifact: "alpha", Failed: scens[q]},
				})
				for _, e := range results {
					if e.Status != http.StatusOK {
						t.Errorf("batch entry status %d (%s)", e.Status, e.Error)
						return
					}
				}
				if !bytes.Equal([]byte(results[0].Body), want[q]) {
					t.Errorf("batch response diverged for scenario %d", q)
					return
				}
				if !bytes.Equal([]byte(results[0].Body), []byte(results[2].Body)) {
					t.Error("dedup entry diverged from its twin")
					return
				}
			}
		}(c)
	}
	wg.Wait()
}
