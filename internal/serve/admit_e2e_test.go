package serve

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"flexile/internal/obs"
)

// doAlloc issues one allocation GET with optional headers and returns the
// response with its body already read and the connection drained.
func doAlloc(t *testing.T, base, failed string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/alloc?failed="+failed, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestTenantQuota: a tenant that bursts past its token bucket is refused
// with 429 + Retry-After while other tenants keep being served.
func TestTenantQuota(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	collector := obs.New()
	srv, err := New(path, Config{CacheSize: 8, Obs: collector, TenantRate: 0.5, TenantBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var rejects int
	for i := 0; i < 5; i++ {
		resp, body := doAlloc(t, ts.URL, "0", map[string]string{"X-Tenant": "alice"})
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			rejects++
			if resp.Header.Get("X-Flexile-Shed") != "quota" {
				t.Fatalf("shed header = %q, want quota", resp.Header.Get("X-Flexile-Shed"))
			}
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
				t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
			}
		default:
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if rejects != 3 {
		t.Fatalf("alice: %d rejects from a burst of 5 with bucket of 2, want 3", rejects)
	}

	// A different tenant has its own bucket; the anonymous pool is its own
	// tenant too.
	if resp, body := doAlloc(t, ts.URL, "0", map[string]string{"X-Tenant": "bob"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob refused alongside alice: %d %s", resp.StatusCode, body)
	}
	if resp, body := doAlloc(t, ts.URL, "0", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous refused alongside alice: %d %s", resp.StatusCode, body)
	}

	m := collector.Snapshot().Serve
	if m.QuotaRejects != int64(rejects) {
		t.Fatalf("QuotaRejects = %d, want %d", m.QuotaRejects, rejects)
	}
	// Quota rejects are still requests, and never touch the cache path.
	if m.Requests != 7 || m.CacheHits+m.CacheMisses != m.Requests-m.QuotaRejects {
		t.Fatalf("counters inconsistent: %+v", m)
	}
}

// TestDeadlineHeader: the X-Request-Deadline header accepts Go durations
// and bare millisecond integers, and rejects garbage with 400.
func TestDeadlineHeader(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	srv, err := New(path, Config{CacheSize: 8, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, good := range []string{"5s", "1500ms", "250", "0"} { // "0" = no deadline
		if resp, body := doAlloc(t, ts.URL, "0", map[string]string{"X-Request-Deadline": good}); resp.StatusCode != http.StatusOK {
			t.Fatalf("deadline %q: %d %s", good, resp.StatusCode, body)
		}
	}
	for _, bad := range []string{"soon", "-5s", "-250", "1.5"} {
		if resp, _ := doAlloc(t, ts.URL, "0", map[string]string{"X-Request-Deadline": bad}); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline %q: %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestDeadlineShedOnArrival: once the gate is saturated and has hold-time
// history, a cache miss whose predicted wait exceeds its deadline is shed
// immediately with 503 + Retry-After instead of queueing.
func TestDeadlineShedOnArrival(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	block := make(chan struct{})
	var blockScen atomic.Int64
	blockScen.Store(-1)
	collector := obs.New()
	srv, err := New(path, Config{
		CacheSize: 8,
		Workers:   -1, // one gate slot
		Obs:       collector,
		ComputeHook: func(q int) error {
			if int64(q) == blockScen.Load() {
				<-block
			} else {
				time.Sleep(40 * time.Millisecond) // seed the hold-time EWMA
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Seed hold-time history with one deliberately slow solve.
	if resp, body := doAlloc(t, ts.URL, "0", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed request: %d %s", resp.StatusCode, body)
	}

	// Saturate the single gate slot with a solve that blocks until released.
	blockScen.Store(1)
	occupied := make(chan struct{})
	go func() {
		defer close(occupied)
		doAlloc(t, ts.URL, "1", nil)
	}()
	waitFor(t, func() bool { return srv.gate.InUse() == 1 })

	// A miss with a deadline far below the ~40ms EWMA must be shed on
	// arrival: no queueing, no recompute.
	resp, body := doAlloc(t, ts.URL, "2", map[string]string{"X-Request-Deadline": "1ms"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predicted-late miss: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Flexile-Shed") != "deadline" {
		t.Fatalf("shed header = %q, want deadline", resp.Header.Get("X-Flexile-Shed"))
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}

	// A cache hit is still served instantly regardless of the deadline.
	if resp, _ := doAlloc(t, ts.URL, "0", map[string]string{"X-Request-Deadline": "1ms"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit shed: %d", resp.StatusCode)
	}

	close(block)
	<-occupied

	m := collector.Snapshot().Serve
	if m.DeadlineShed != 1 {
		t.Fatalf("DeadlineShed = %d, want 1", m.DeadlineShed)
	}
}

// TestDeadlineDetachedRecompute: a waiter whose deadline expires gets 503,
// but the recomputation it initiated still runs to completion and fills
// the cache — the next request for the same state is a hit.
func TestDeadlineDetachedRecompute(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	release := make(chan struct{})
	collector := obs.New()
	srv, err := New(path, Config{
		CacheSize: 8,
		Obs:       collector,
		ComputeHook: func(int) error {
			<-release
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan *http.Response, 1)
	go func() {
		resp, _ := doAlloc(t, ts.URL, "0", map[string]string{"X-Request-Deadline": "30ms"})
		done <- resp
	}()
	resp := <-done
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("X-Flexile-Shed") != "deadline" {
		t.Fatalf("expired waiter: %d shed=%q, want 503/deadline", resp.StatusCode, resp.Header.Get("X-Flexile-Shed"))
	}

	// Let the detached solve finish; its side effects must land.
	close(release)
	waitFor(t, func() bool { return srv.st.load().cache.len() == 1 })
	if resp, _ := doAlloc(t, ts.URL, "0", nil); resp.Header.Get("X-Flexile-Cache") != "hit" {
		t.Fatalf("detached solve did not fill the cache: %q", resp.Header.Get("X-Flexile-Cache"))
	}

	m := collector.Snapshot().Serve
	if m.DeadlineExpired != 1 || m.Recomputes != 1 {
		t.Fatalf("counters = %+v, want 1 expired / 1 recompute", m)
	}
}

// TestBreakerDegradedAndRecovery walks the recompute breaker through its
// whole state machine: consecutive solve failures degrade to stale answers
// and trip the breaker; while open, known states serve stale (without
// touching the solve path) and unknown states shed; after the cooldown one
// probe closes it again.
func TestBreakerDegradedAndRecovery(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	var fail atomic.Bool
	var hookCalls atomic.Int64
	collector := obs.New()
	srv, err := New(path, Config{
		CacheSize:        8,
		Obs:              collector,
		BreakerThreshold: 2,
		BreakerCooldown:  300 * time.Millisecond,
		ComputeHook: func(int) error {
			hookCalls.Add(1)
			if fail.Load() {
				return errors.New("scripted solve failure")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Healthy pass: fills the cache and the last-known-good store.
	_, good := doAlloc(t, ts.URL, "0", nil)

	// Reload the same artifact: the per-artifact cache resets but the
	// last-known-good store survives — exactly the situation degraded
	// serving exists for.
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}

	fail.Store(true)
	for i := 0; i < 2; i++ {
		resp, body := doAlloc(t, ts.URL, "0", nil)
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Flexile-Degraded") != "stale" {
			t.Fatalf("failure %d: %d degraded=%q body=%s", i, resp.StatusCode, resp.Header.Get("X-Flexile-Degraded"), body)
		}
		if !bytes.Equal(body, good) {
			t.Fatalf("degraded answer diverged from last known good")
		}
	}

	// Threshold reached: breaker is open. Known state → stale without
	// invoking the solve; unknown state → shed with Retry-After.
	calls := hookCalls.Load()
	resp, body := doAlloc(t, ts.URL, "0", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Flexile-Degraded") != "stale" || !bytes.Equal(body, good) {
		t.Fatalf("open breaker, known state: %d %s", resp.StatusCode, body)
	}
	if hookCalls.Load() != calls {
		t.Fatal("open breaker still invoked the solve path")
	}
	resp, _ = doAlloc(t, ts.URL, "1", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("X-Flexile-Shed") != "breaker" {
		t.Fatalf("open breaker, unknown state: %d shed=%q", resp.StatusCode, resp.Header.Get("X-Flexile-Shed"))
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}

	// Cooldown passes, the fault clears: one probe closes the breaker and
	// live serving resumes bit-identically.
	fail.Store(false)
	time.Sleep(350 * time.Millisecond)
	resp, body = doAlloc(t, ts.URL, "0", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Flexile-Degraded") != "" {
		t.Fatalf("post-recovery: %d degraded=%q", resp.StatusCode, resp.Header.Get("X-Flexile-Degraded"))
	}
	if !bytes.Equal(body, good) {
		t.Fatal("post-recovery answer differs")
	}

	m := collector.Snapshot().Serve
	if m.BreakerTrips != 1 || m.RecomputeErrors != 2 || m.Degraded != 3 || m.BreakerRejects != 2 {
		t.Fatalf("breaker counters = %+v, want 1 trip / 2 errors / 3 degraded / 2 rejects", m)
	}
}

// TestReloadBreakerSuppression: consecutive reload failures open the
// reload breaker, which then refuses further attempts outright (the old
// artifact keeps serving) until the cooldown admits a probe.
func TestReloadBreakerSuppression(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	s, err := solvedTriangle()
	if err != nil {
		t.Fatal(err)
	}
	collector := obs.New()
	srv, err := New(path, Config{
		CacheSize:        8,
		Obs:              collector,
		BreakerThreshold: 2,
		BreakerCooldown:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := get(t, ts.URL+"/v1/alloc?failed=0", "miss")

	if err := os.WriteFile(path, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := srv.Reload(); err == nil || errors.Is(err, ErrReloadSuppressed) {
			t.Fatalf("corrupt reload %d: %v, want a real load error", i, err)
		}
	}
	// Breaker open: even a now-valid file is refused without being read.
	if err := os.WriteFile(path, s.blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); !errors.Is(err, ErrReloadSuppressed) {
		t.Fatalf("open reload breaker: %v, want ErrReloadSuppressed", err)
	}
	if !bytes.Equal(get(t, ts.URL+"/v1/alloc?failed=0", "hit"), before) {
		t.Fatal("suppressed reload disturbed serving")
	}

	// Cooldown admits one probe; the valid file closes the breaker.
	time.Sleep(350 * time.Millisecond)
	if err := srv.Reload(); err != nil {
		t.Fatalf("probe reload: %v", err)
	}
	if !bytes.Equal(get(t, ts.URL+"/v1/alloc?failed=0", "miss"), before) {
		t.Fatal("post-recovery artifact serves different bytes")
	}

	m := collector.Snapshot().Serve
	if m.ReloadsSkipped != 1 || m.BreakerTrips != 1 || m.ReloadErrors != 2 {
		t.Fatalf("reload breaker counters = %+v, want 1 skipped / 1 trip / 2 errors", m)
	}
}

// TestDrainFlipsReadyFirst: BeginDrain makes /readyz report 503 while
// /healthz and in-flight allocation serving stay up — the load balancer
// stops sending traffic before the listener goes away.
func TestDrainFlipsReadyFirst(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	srv, err := New(path, Config{CacheSize: 8, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain readyz: %v %v", resp, err)
	}
	resp.Body.Close()

	srv.BeginDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %v %v, want 503", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz: %v %v, want 200", resp, err)
	}
	resp.Body.Close()
	if resp, body := doAlloc(t, ts.URL, "0", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining alloc: %d %s", resp.StatusCode, body)
	}
}

// waitFor polls cond for up to 2s; the soak and admission tests use it in
// place of fixed sleeps for cross-goroutine visibility.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
