package serve

import (
	"errors"
	"sort"
	"testing"
)

// FuzzDecodeArtifact feeds arbitrary bytes to the artifact decoder. The
// contract under test: any input either decodes into a fully validated,
// re-encodable artifact or returns a wrapped ErrArtifact — never a panic,
// never an out-of-range index surviving into the instance.
func FuzzDecodeArtifact(f *testing.F) {
	if s, err := solvedTriangle(); err == nil {
		f.Add(s.blob) // a genuine artifact keeps the fuzzer in deep payload territory
		trunc := append([]byte(nil), s.blob[:len(s.blob)/2]...)
		f.Add(trunc)
		flip := append([]byte(nil), s.blob...)
		flip[headerSize+3] ^= 0xff
		f.Add(flip)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrArtifact) {
				t.Fatalf("decode error does not wrap ErrArtifact: %v", err)
			}
			if a != nil {
				t.Fatal("Decode returned both an artifact and an error")
			}
			return
		}
		// Accepted input: every index the validator promised must hold, and
		// instantiation must succeed (it only re-checks what Decode already
		// enforced).
		for _, e := range a.Edges {
			if e.A < 0 || e.A >= a.NumNodes || e.B < 0 || e.B >= a.NumNodes || e.A == e.B {
				t.Fatalf("accepted edge out of range: %+v with %d nodes", e, a.NumNodes)
			}
		}
		for _, p := range a.Pairs {
			if p[0] < 0 || p[1] >= a.NumNodes || p[0] >= p[1] {
				t.Fatalf("accepted pair out of range: %v", p)
			}
		}
		for _, s := range a.Scenarios {
			if !(s.Prob >= 0 && s.Prob <= 1) {
				t.Fatalf("accepted probability %v", s.Prob)
			}
			for _, e := range s.Failed {
				if e < 0 || e >= len(a.Edges) {
					t.Fatalf("accepted failed edge %d of %d", e, len(a.Edges))
				}
			}
		}
		if _, _, _, err := a.Instantiate(); err != nil {
			t.Fatalf("accepted artifact failed to instantiate: %v", err)
		}
		// A decoded artifact must survive an encode→decode round trip.
		if _, err := Decode(a.Encode()); err != nil {
			t.Fatalf("re-encode of accepted artifact rejected: %v", err)
		}
	})
}

// FuzzParseRequest feeds arbitrary bytes to the failure-state request
// parser: any input either yields a canonical (sorted, deduplicated,
// in-range) request or a wrapped ErrBadRequest — never a panic.
func FuzzParseRequest(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("parse error does not wrap ErrBadRequest: %v", err)
			}
			return
		}
		if !sort.IntsAreSorted(req.Failed) {
			t.Fatalf("accepted request not sorted: %v", req.Failed)
		}
		for i, e := range req.Failed {
			if e < 0 || e >= maxEdges {
				t.Fatalf("accepted edge id %d out of range", e)
			}
			if i > 0 && e == req.Failed[i-1] {
				t.Fatalf("accepted request not deduplicated: %v", req.Failed)
			}
		}
		// The canonical form must map to the same scenario key on re-parse.
		if again, err := ParseQuery(failedKey(req.Failed)); err != nil || failedKey(again.Failed) != failedKey(req.Failed) {
			t.Fatalf("canonical form unstable: %v / %v", again, err)
		}
	})
}

// FuzzParseBatchRequest feeds arbitrary bytes to the batch envelope
// decoder: any input either yields a batch whose every query is canonical
// (sorted, deduplicated, in-range, within the batch limit) or a wrapped
// ErrBadRequest — never a panic.
func FuzzParseBatchRequest(f *testing.F) {
	f.Add([]byte(`{"queries":[{"failed":[0,2]},{"artifact":"ibm","failed":[]}]}`))
	f.Add([]byte(`{"queries":[{"failed":[2,2,0]}]}`))
	f.Add([]byte(`{"queries":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseBatchRequest(data, 0)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("parse error does not wrap ErrBadRequest: %v", err)
			}
			return
		}
		if len(req.Queries) == 0 || len(req.Queries) > DefaultMaxBatch {
			t.Fatalf("accepted %d queries outside (0, %d]", len(req.Queries), DefaultMaxBatch)
		}
		for qi, q := range req.Queries {
			if !sort.IntsAreSorted(q.Failed) {
				t.Fatalf("query %d not sorted: %v", qi, q.Failed)
			}
			for i, e := range q.Failed {
				if e < 0 || e >= maxEdges {
					t.Fatalf("query %d accepted edge id %d out of range", qi, e)
				}
				if i > 0 && e == q.Failed[i-1] {
					t.Fatalf("query %d not deduplicated: %v", qi, q.Failed)
				}
			}
		}
	})
}

// FuzzResolveArtifactName throws arbitrary strings at registry name
// resolution over a live two-artifact registry. The contract: never a
// panic, loaded names resolve to their server, and everything else —
// hostile charsets included — is a clean error.
func FuzzResolveArtifactName(f *testing.F) {
	dir := writeRegistryDir(f, "alpha", "beta")
	reg, err := NewRegistry(dir, Config{CacheSize: 4, Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(reg.Close)
	f.Add("alpha")
	f.Add("")
	f.Add("../../etc/passwd")
	f.Add(".hidden")
	f.Add("alpha\x00")
	f.Fuzz(func(t *testing.T, name string) {
		srv, resolved, err := reg.resolveArtifact(name)
		if err != nil {
			if srv != nil {
				t.Fatal("resolveArtifact returned both a server and an error")
			}
			return
		}
		if srv == nil {
			t.Fatalf("resolveArtifact(%q) returned neither server nor error", name)
		}
		if !ValidArtifactName(resolved) {
			t.Fatalf("resolved to invalid name %q", resolved)
		}
		if name != "" && resolved != name {
			t.Fatalf("resolveArtifact(%q) resolved to different name %q", name, resolved)
		}
	})
}
