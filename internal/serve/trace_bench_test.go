package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"flexile/internal/obs"
)

// BenchmarkWarmAlloc pins the server-side cost of the warm-cache hit path
// with tracing off (no ring) and on (every request traced) — the in-process
// counterpart of the h-trace-overhead hypothesis, useful for attributing
// the delta to allocations rather than loopback-HTTP noise.
func BenchmarkWarmAlloc(b *testing.B) {
	for _, bc := range []struct {
		name  string
		every int // 0 = tracing off
	}{{"plain", 0}, {"traced", 1}, {"sampled", DefaultTraceEvery}} {
		b.Run(bc.name, func(b *testing.B) {
			path, _, _, _ := writeArtifact(b)
			cfg := Config{CacheSize: 64, Workers: 2}
			if bc.every > 0 {
				cfg.Ring = obs.NewTraceRing(0, 0, 0)
				cfg.TraceEvery = bc.every
			}
			srv, err := New(path, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			req := httptest.NewRequest(http.MethodGet, "/v1/alloc?failed=0", nil)
			srv.ServeHTTP(httptest.NewRecorder(), req) // warm the cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.ServeHTTP(httptest.NewRecorder(), req)
			}
		})
	}
}
