package serve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"flexile/internal/failure"
	flexscheme "flexile/internal/scheme/flexile"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// triangleInstance is the repo's canonical tiny fixture: the paper's Fig. 1
// triangle with one class, two flows and all 8 failure scenarios.
func triangleInstance() *te.Instance {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	return inst
}

// solvedTriangle runs the offline phase once per test binary and hands out
// the instance, its design and the encoded artifact.
var solvedTriangle = sync.OnceValues(func() (struct {
	inst *te.Instance
	off  *flexscheme.OfflineResult
	opt  flexscheme.Options
	blob []byte
}, error) {
	var out struct {
		inst *te.Instance
		off  *flexscheme.OfflineResult
		opt  flexscheme.Options
		blob []byte
	}
	out.inst = triangleInstance()
	out.opt = flexscheme.Options{Workers: 2}
	off, err := flexscheme.Offline(out.inst, out.opt)
	if err != nil {
		return out, err
	}
	out.off = off
	art, err := Build(out.inst, off, out.opt)
	if err != nil {
		return out, err
	}
	out.blob = art.Encode()
	return out, nil
})

// writeArtifact materializes the solved triangle's artifact in a temp file
// and returns its path plus the pieces a test needs for comparison.
func writeArtifact(t testing.TB) (path string, inst *te.Instance, off *flexscheme.OfflineResult, opt flexscheme.Options) {
	t.Helper()
	s, err := solvedTriangle()
	if err != nil {
		t.Fatalf("offline solve: %v", err)
	}
	path = filepath.Join(t.TempDir(), "triangle.flxa")
	if err := os.WriteFile(path, s.blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, s.inst, s.off, s.opt
}

func TestArtifactRoundTrip(t *testing.T) {
	s, err := solvedTriangle()
	if err != nil {
		t.Fatalf("offline solve: %v", err)
	}
	art, err := Decode(s.blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	inst2, off2, opt2, err := art.Instantiate()
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}

	if inst2.Topo.Name != s.inst.Topo.Name || inst2.Topo.G.NumNodes() != s.inst.Topo.G.NumNodes() {
		t.Fatalf("topology mismatch: %s/%d", inst2.Topo.Name, inst2.Topo.G.NumNodes())
	}
	if !reflect.DeepEqual(inst2.Pairs, s.inst.Pairs) || !reflect.DeepEqual(inst2.Demand, s.inst.Demand) {
		t.Fatal("pairs or demands did not round-trip")
	}
	if !reflect.DeepEqual(inst2.Tunnels, s.inst.Tunnels) {
		t.Fatal("tunnel tables did not round-trip")
	}
	if !reflect.DeepEqual(inst2.Scenarios, s.inst.Scenarios) {
		t.Fatal("scenarios did not round-trip")
	}
	if !off2.Critical.Equal(s.off.Critical) {
		t.Fatal("critical set did not round-trip")
	}
	if !reflect.DeepEqual(off2.ScenLossOpt, s.off.ScenLossOpt) {
		t.Fatalf("ScenLossOpt did not round-trip: %v vs %v", off2.ScenLossOpt, s.off.ScenLossOpt)
	}
	if !reflect.DeepEqual(off2.SubLosses, s.off.SubLosses) {
		t.Fatal("SubLosses did not round-trip")
	}
	if opt2.Gamma != -1 {
		t.Fatalf("zero-value Gamma must normalize to -1 (disabled), got %v", opt2.Gamma)
	}

	// Allocations from the reconstructed pieces must be bit-identical to the
	// originals for every scenario — the serving determinism contract.
	for q := range s.inst.Scenarios {
		want, err := flexscheme.Online(s.inst, s.off, q, s.opt)
		if err != nil {
			t.Fatalf("Online(original, %d): %v", q, err)
		}
		got, err := flexscheme.Online(inst2, off2, q, opt2)
		if err != nil {
			t.Fatalf("Online(decoded, %d): %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scenario %d: decoded allocation differs from original", q)
		}
	}
}

func TestArtifactEncodeDeterministic(t *testing.T) {
	s, err := solvedTriangle()
	if err != nil {
		t.Fatal(err)
	}
	art, err := Build(s.inst, s.off, s.opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art.Encode(), s.blob) {
		t.Fatal("two Encode calls of the same design differ")
	}
	art2, err := Decode(s.blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art2.Encode(), s.blob) {
		t.Fatal("decode→encode is not the identity")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s, err := solvedTriangle()
	if err != nil {
		t.Fatal(err)
	}
	blob := s.blob
	cases := map[string]func() []byte{
		"empty":     func() []byte { return nil },
		"short":     func() []byte { return blob[:headerSize-1] },
		"magic":     func() []byte { b := append([]byte(nil), blob...); b[0] = 'X'; return b },
		"version":   func() []byte { b := append([]byte(nil), blob...); b[4] = 99; return b },
		"truncated": func() []byte { return blob[:len(blob)-1] },
		"extended":  func() []byte { return append(append([]byte(nil), blob...), 0) },
		"bitflip": func() []byte {
			b := append([]byte(nil), blob...)
			b[headerSize+8] ^= 0x40
			return b
		},
		"checksum": func() []byte {
			b := append([]byte(nil), blob...)
			b[16] ^= 1
			return b
		},
		"hugelen": func() []byte {
			b := append([]byte(nil), blob...)
			for i := 8; i < 16; i++ {
				b[i] = 0xff
			}
			return b
		},
	}
	for name, mk := range cases {
		if _, err := Decode(mk()); !errors.Is(err, ErrArtifact) {
			t.Errorf("%s: Decode = %v, want ErrArtifact", name, err)
		}
	}
}

func TestDecodeRejectsSemanticGarbage(t *testing.T) {
	s, err := solvedTriangle()
	if err != nil {
		t.Fatal(err)
	}
	// Re-encoding after each mutation produces a valid header over a
	// semantically broken payload, so only the validation layer can reject.
	mutate := []struct {
		name string
		fn   func(a *Artifact)
	}{
		{"self-loop edge", func(a *Artifact) { a.Edges[0].B = a.Edges[0].A }},
		{"edge node range", func(a *Artifact) { a.Edges[0].A = a.NumNodes }},
		{"negative capacity", func(a *Artifact) { a.Edges[0].Capacity = -1 }},
		{"unordered pair", func(a *Artifact) { a.Pairs[0] = [2]int{1, 0} }},
		{"beta range", func(a *Artifact) { a.Classes[0].Beta = 1.5 }},
		{"negative demand", func(a *Artifact) { a.Demand[0][0] = -2 }},
		{"prob range", func(a *Artifact) { a.Scenarios[0].Prob = 2 }},
		{"failed edge range", func(a *Artifact) { a.Scenarios[1].Failed = []int{len(a.Edges)} }},
		{"unsorted failed", func(a *Artifact) { a.Scenarios[7].Failed = []int{2, 1, 0} }},
		{"scenloss range", func(a *Artifact) { a.ScenLossOpt[0] = -0.5 }},
		{"path bad edge", func(a *Artifact) { a.Tunnels[0][0][0].Edges[0] = len(a.Edges) - 1 }},
	}
	for _, m := range mutate {
		a, err := Decode(s.blob) // fresh copy each time
		if err != nil {
			t.Fatal(err)
		}
		m.fn(a)
		if _, err := Decode(a.Encode()); !errors.Is(err, ErrArtifact) {
			t.Errorf("%s: Decode accepted mutated artifact (err=%v)", m.name, err)
		}
	}
}

func TestParseRequest(t *testing.T) {
	good := map[string][]int{
		`{"failed":[]}`:      {},
		`{"failed":null}`:    {},
		`{"failed":[2,0,1]}`: {0, 1, 2},
		`{"failed":[1,1,1]}`: {1},
	}
	for in, want := range good {
		req, err := ParseRequest([]byte(in))
		if err != nil {
			t.Errorf("ParseRequest(%s): %v", in, err)
			continue
		}
		if len(req.Failed) != len(want) {
			t.Errorf("ParseRequest(%s) = %v, want %v", in, req.Failed, want)
			continue
		}
		for i := range want {
			if req.Failed[i] != want[i] {
				t.Errorf("ParseRequest(%s) = %v, want %v", in, req.Failed, want)
			}
		}
	}
	bad := []string{
		``, `{`, `[]`, `"x"`, `{"failed":[-1]}`, `{"failed":["a"]}`,
		`{"failed":[0],"extra":1}`, `{"failed":[0]} trailing`,
		`{"failed":[99999999999999999999]}`, `{"failed":[5000000]}`,
	}
	for _, in := range bad {
		if _, err := ParseRequest([]byte(in)); !errors.Is(err, ErrBadRequest) {
			t.Errorf("ParseRequest(%q) = %v, want ErrBadRequest", in, err)
		}
	}
}

func TestParseQuery(t *testing.T) {
	req, err := ParseQuery("2, 0,1")
	if err != nil || len(req.Failed) != 3 || req.Failed[0] != 0 || req.Failed[2] != 2 {
		t.Fatalf("ParseQuery = %v, %v", req, err)
	}
	if req, err := ParseQuery(""); err != nil || len(req.Failed) != 0 {
		t.Fatalf("empty query = %v, %v", req, err)
	}
	for _, in := range []string{"x", "1,,2", "-1", "1.5"} {
		if _, err := ParseQuery(in); !errors.Is(err, ErrBadRequest) {
			t.Errorf("ParseQuery(%q) = %v, want ErrBadRequest", in, err)
		}
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRUCache(2)
	c.put(1, []byte("a"))
	c.put(2, []byte("b"))
	if _, ok := c.get(1); !ok {
		t.Fatal("1 evicted too early")
	}
	c.put(3, []byte("c")) // evicts 2 (1 was just touched)
	if _, ok := c.get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if v, ok := c.get(3); !ok || string(v) != "c" {
		t.Fatalf("get(3) = %q, %v", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}

	off := newLRUCache(0)
	off.put(1, []byte("a"))
	if _, ok := off.get(1); ok {
		t.Fatal("capacity-0 cache must never hit")
	}

	unbounded := newLRUCache(-1)
	for i := 0; i < 100; i++ {
		unbounded.put(i, []byte{byte(i)})
	}
	if unbounded.len() != 100 {
		t.Fatalf("unbounded cache evicted: len = %d", unbounded.len())
	}
}
