package serve

import (
	"net/http"
	"sync/atomic"
	"time"

	"flexile/internal/obs"
)

// Request-scoped tracing (DESIGN.md §16). Every request gets an
// X-Request-Id; a sampled subset additionally gets an obs.ReqTrace carried
// on the request context through the admission/serve pipeline, where each
// stage records a span. Finished traces land in the Config.Ring behind
// GET /debug/requests and — when a chrome://tracing tracer is attached to
// the collector — on the -trace timeline next to the solver spans.
//
// Sampling: an incoming W3C traceparent with the sampled flag forces
// tracing (a caller who traced their half gets ours); otherwise
// Config.TraceEvery picks one request in every n. A nil Ring disables
// tracing entirely and the hot path takes no tracing branches beyond the
// always-on request id.

// beginRequest assigns and echoes the request id (generating one when the
// caller sent none), decides trace sampling, and — for sampled requests —
// returns a started trace plus the request rewrapped with the trace on its
// context and a traceparent response header announcing our span. Shared by
// Server.ServeHTTP and the Registry's batch handler, which bypasses any
// child server's ServeHTTP.
func beginRequest(cfg Config, traceSeq *atomic.Int64, w http.ResponseWriter, r *http.Request) (string, *obs.ReqTrace, *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = nextRequestID()
	}
	w.Header().Set("X-Request-Id", rid)
	if cfg.Ring == nil {
		return rid, nil, r
	}
	tc, hasParent := obs.ParseTraceparent(r.Header.Get("traceparent"))
	sampled := hasParent && tc.Sampled
	if !sampled {
		n := cfg.TraceEvery
		if n == 0 {
			n = DefaultTraceEvery
		}
		sampled = n <= 1 || traceSeq.Add(1)%int64(n) == 0
	}
	if !sampled {
		return rid, nil, r
	}
	tr := obs.NewReqTrace(rid)
	if hasParent {
		tr.SetParent(tc)
	}
	tr.Method = r.Method
	tr.Path = r.URL.Path
	tr.Tenant = r.Header.Get("X-Tenant")
	w.Header().Set("traceparent", tr.Traceparent())
	return rid, tr, r.WithContext(obs.WithReqTrace(r.Context(), tr))
}

// endRequest finishes a traced request: the summary latches from the
// access recorder (shed reason from the response header the shed writers
// set), the trace lands in the ring, and — when a tracer is attached —
// on the chrome://tracing timeline. A nil trace is a no-op.
func endRequest(cfg Config, tr *obs.ReqTrace, rec *accessRecorder) {
	if tr == nil {
		return
	}
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	tr.Finish(status, rec.bytes, rec.scenario, rec.cache, rec.Header().Get("X-Flexile-Shed"))
	cfg.Ring.Add(tr)
	if col := cfg.collector(); col != nil {
		if sink := col.TraceSink(); sink != nil {
			sink.RecordRequest(tr.Snapshot())
		}
	}
}

// lapper records the stage spans of one request. Laps share one continuous
// cursor, so the non-nested spans of a request tile its wall-clock — their
// durations sum to (approximately) the served latency, which is what makes
// a /debug/requests timeline trustworthy. Each lap also feeds the matching
// flexile_serve_stage_duration_seconds series, tracing sampled or not, so
// the aggregate histograms cover every request. Batch stage-2 groups run
// concurrently off their own nested lappers (tag distinguishes them); only
// the serial top-level lapper produces tiling spans.
type lapper struct {
	tr     *obs.ReqTrace
	col    *obs.Collector
	last   time.Time
	nested bool
	tag    string // appended to span names, "cache:<tag>"
}

// Lap closes the stage that began at the previous lap (or construction):
// one span on the trace, one observation into the stage histogram.
func (l *lapper) Lap(name string, id obs.LatencyID) {
	if l == nil {
		return
	}
	now := time.Now()
	if l.tr != nil {
		if l.tag != "" {
			name = name + ":" + l.tag
		}
		l.tr.AddSpan(name, l.last, now, l.nested)
	}
	if l.col != nil {
		l.col.ObserveLatency(id, now.Sub(l.last))
	}
	l.last = now
}
