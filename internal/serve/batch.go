package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"flexile/internal/admit"
	"flexile/internal/obs"
)

// DefaultMaxBatch is the per-request query limit when Config.MaxBatch is
// zero. Large enough to amortize HTTP+admission overhead across a burst of
// failure states, small enough that one envelope stays well under
// maxBatchBody even for maximum-size failure sets.
const DefaultMaxBatch = 64

// maxBatchBody bounds how much of a batch request body the server reads.
const maxBatchBody = 8 << 20

// BatchQuery is one allocation query inside a batch request. Artifact
// selects the registry entry ("" means the request's default artifact; a
// single-artifact server accepts only ""); Failed is the failure state in
// the same form as the single-query POST body.
type BatchQuery struct {
	Artifact string `json:"artifact,omitempty"`
	Failed   []int  `json:"failed"`
}

// BatchRequest is the POST /v1/alloc/batch envelope.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchEntry is one result in a batch response, positionally matching the
// request's queries. Status is the entry's would-be single-request HTTP
// status; for 200s Body holds exactly the bytes GET /v1/alloc would have
// written, and Cache/Degraded mirror the X-Flexile-Cache and
// X-Flexile-Degraded headers (plus "dedup" for entries answered by copying
// an identical earlier entry's result). Non-200 entries carry the
// single-request error text in Error, and sheds mirror X-Flexile-Shed and
// Retry-After in Shed/RetryAfter.
type BatchEntry struct {
	Status     int             `json:"status"`
	Artifact   string          `json:"artifact,omitempty"`
	Scenario   int             `json:"scenario"`
	Cache      string          `json:"cache,omitempty"`
	Degraded   bool            `json:"degraded,omitempty"`
	Shed       string          `json:"shed,omitempty"`
	RetryAfter int             `json:"retry_after,omitempty"`
	Error      string          `json:"error,omitempty"`
	Body       json.RawMessage `json:"body,omitempty"`
}

// BatchResponse is the POST /v1/alloc/batch response envelope.
type BatchResponse struct {
	Results []BatchEntry `json:"results"`
}

// ParseBatchRequest decodes and validates a batch envelope. The contract
// matches ParseRequest: arbitrary bytes yield either a canonical request
// (every query's Failed sorted, deduplicated, in-range) or a wrapped
// ErrBadRequest — never a panic. Envelope-level strictness is deliberate:
// one malformed query rejects the whole batch, so a 200 envelope always
// answers every query the client sent.
func ParseBatchRequest(data []byte, maxBatch int) (*BatchRequest, error) {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if len(data) > maxBatchBody {
		return nil, fmt.Errorf("%w: batch body of %d bytes exceeds %d", ErrBadRequest, len(data), maxBatchBody)
	}
	var req BatchRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after batch object", ErrBadRequest)
	}
	if len(req.Queries) == 0 {
		return nil, fmt.Errorf("%w: batch carries no queries", ErrBadRequest)
	}
	if len(req.Queries) > maxBatch {
		return nil, fmt.Errorf("%w: %d queries exceed the %d-query batch limit", ErrBadRequest, len(req.Queries), maxBatch)
	}
	for i := range req.Queries {
		ar := AllocRequest{Failed: req.Queries[i].Failed}
		if err := canonicalize(&ar); err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		req.Queries[i].Failed = ar.Failed
	}
	return &req, nil
}

// artifactResolver maps a batch query's artifact name to the server that
// owns it. A single-artifact Server resolves only the empty name (to
// itself); a Registry resolves names to loaded entries and applies its
// default-artifact rule. The returned name is the resolved display name
// ("" for a bare single-artifact server).
type artifactResolver interface {
	resolveArtifact(name string) (*Server, string, error)
}

// resolveArtifact implements artifactResolver for a standalone Server: it
// owns exactly one unnamed artifact.
func (s *Server) resolveArtifact(name string) (*Server, string, error) {
	if name != "" {
		return nil, "", fmt.Errorf("unknown artifact %q", name)
	}
	return s, "", nil
}

// handleBatch serves POST /v1/alloc/batch for a single-artifact server.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	serveBatch(w, r, s, s.cfg)
}

// batchGroup is one unique (server, failure state) across a batch: the
// first query with that key computes, later duplicates copy its result.
type batchGroup struct {
	srv     *Server
	name    string
	req     *AllocRequest
	members []int // request positions answered by this group
	res     allocResult
	d       obs.ServeMetrics
}

// serveBatch is the shared POST /v1/alloc/batch implementation behind both
// a standalone Server and a Registry (DESIGN.md §14). One HTTP request
// carries many allocation queries; each query keeps per-entry admission
// semantics (quota on the resolved server's buckets, deadline, breaker),
// duplicates of the same (artifact, failure-state) pair are answered once,
// and unique misses fan out concurrently through each server's existing
// gate/flight pipeline. Entry bodies are the exact bytes the single-query
// path would have written.
func serveBatch(w http.ResponseWriter, r *http.Request, res artifactResolver, cfg Config) {
	start := time.Now()
	col := cfg.collector()
	var top obs.ServeMetrics
	top.BatchRequests = 1
	defer func() {
		if col != nil {
			col.AddServe(top)
			col.ObserveLatency(obs.LatServeRequest, time.Since(start))
		}
	}()
	// The top-level lapper tiles the serial phases of the batch (parse →
	// admit → flight barrier → write); each stage-2 group records its own
	// nested spans from its goroutine.
	tr := obs.ReqTraceFrom(r.Context())
	lap := &lapper{tr: tr, col: col, last: start}

	body, rerr := io.ReadAll(io.LimitReader(r.Body, maxBatchBody+1))
	if rerr != nil {
		top.BadRequests = 1
		writeError(w, http.StatusBadRequest, "reading body: "+rerr.Error())
		return
	}
	req, err := ParseBatchRequest(body, cfg.maxBatch())
	if err != nil {
		top.BadRequests = 1
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	deadline, derr := admit.ParseDeadline(r.Header.Get("X-Request-Deadline"), cfg.DefaultDeadline)
	if derr != nil {
		top.BadRequests = 1
		writeError(w, http.StatusBadRequest, derr.Error())
		return
	}
	lap.Lap("parse", obs.LatStageParse)
	top.BatchEntries = int64(len(req.Queries))
	tenant := r.Header.Get("X-Tenant")

	waitCtx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithDeadline(waitCtx, start.Add(deadline))
		defer cancel()
	}

	// Stage 1 (serial, cheap): resolve each query's artifact, charge its
	// tenant quota on the owning server, and group duplicates. Entries
	// rejected here never reach a worker.
	type groupKey struct {
		srv *Server
		key string
	}
	entries := make([]BatchEntry, len(req.Queries))
	groups := make(map[groupKey]*batchGroup)
	perSrv := make(map[*Server]*obs.ServeMetrics)
	var order []*batchGroup
	for i, qy := range req.Queries {
		srv, name, rerr := res.resolveArtifact(qy.Artifact)
		if rerr != nil {
			top.BadRequests++
			entries[i] = BatchEntry{Status: http.StatusNotFound, Artifact: qy.Artifact, Scenario: -1, Error: rerr.Error()}
			continue
		}
		d := perSrv[srv]
		if d == nil {
			d = &obs.ServeMetrics{}
			perSrv[srv] = d
		}
		d.Requests++
		if ok, retry := srv.quota.Allow(tenant); !ok {
			d.QuotaRejects++
			entries[i] = BatchEntry{Status: http.StatusTooManyRequests, Artifact: name, Scenario: -1,
				Shed: "quota", RetryAfter: admit.RetryAfterSeconds(retry), Error: "tenant quota exceeded"}
			continue
		}
		gk := groupKey{srv, failedKey(qy.Failed)}
		g := groups[gk]
		if g == nil {
			g = &batchGroup{srv: srv, name: name, req: &AllocRequest{Failed: qy.Failed}}
			groups[gk] = g
			order = append(order, g)
		} else {
			top.BatchDeduped++
		}
		g.members = append(g.members, i)
	}
	lap.Lap("admit", obs.LatStageAdmit)

	// Stage 2 (concurrent): one allocate per unique group; the per-server
	// gate still bounds actual recomputation concurrency, so a wide batch
	// cannot stampede the solver any harder than wide single requests.
	var wg sync.WaitGroup
	for _, g := range order {
		wg.Add(1)
		go func(g *batchGroup) {
			defer wg.Done()
			glap := &lapper{tr: tr, col: col, last: time.Now(), nested: true, tag: failedKey(g.req.Failed)}
			g.res = g.srv.allocate(waitCtx, g.srv.st.load(), g.req, deadline, &g.d, glap)
		}(g)
	}
	wg.Wait()
	lap.Lap("flight", obs.LatStageFlight)

	for _, g := range order {
		d := perSrv[g.srv]
		d.BadRequests += g.d.BadRequests
		d.CacheHits += g.d.CacheHits
		d.CacheMisses += g.d.CacheMisses
		d.FlightShared += g.d.FlightShared
		d.DeadlineShed += g.d.DeadlineShed
		d.DeadlineExpired += g.d.DeadlineExpired
		d.QuotaRejects += g.d.QuotaRejects
		d.BreakerRejects += g.d.BreakerRejects
		d.Degraded += g.d.Degraded
		for pos, i := range g.members {
			e := batchEntry(g.name, g.res)
			if pos > 0 && e.Status == http.StatusOK && !e.Degraded {
				e.Cache = "dedup"
			}
			entries[i] = e
		}
	}
	// Flush per-server dispositions into each server's own collector (a
	// registry child rolls them up to the aggregate), so per-artifact and
	// fleet counters both see batch entries exactly like single requests.
	keys := make([]*Server, 0, len(perSrv))
	for srv := range perSrv {
		keys = append(keys, srv)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].path < keys[j].path })
	for _, srv := range keys {
		if c := srv.cfg.collector(); c != nil {
			c.AddServe(*perSrv[srv])
		}
	}

	w.Header().Set("Content-Type", "application/json")
	writeBatchResponse(w, entries)
	lap.Lap("write", obs.LatStageWrite)
}

// writeBatchResponse streams the envelope, splicing each entry's cached
// body bytes in verbatim. Encoding the whole BatchResponse through
// encoding/json would re-parse every Body RawMessage to compact it — an
// O(total body bytes) pass that dominated warm-cache batch latency — and
// byte-splicing is also the stronger form of the bit-identity contract:
// the cached single-request bytes land on the wire untouched.
func writeBatchResponse(w io.Writer, entries []BatchEntry) error {
	buf := bytes.NewBuffer(make([]byte, 0, 1024))
	buf.WriteString(`{"results":[`)
	for i := range entries {
		if i > 0 {
			buf.WriteByte(',')
		}
		body := entries[i].Body
		entries[i].Body = nil
		meta, err := json.Marshal(&entries[i])
		if err != nil {
			return err
		}
		if len(body) == 0 {
			buf.Write(meta)
			continue
		}
		// meta is "{...}"; reopen it to append the body field verbatim.
		buf.Write(meta[:len(meta)-1])
		buf.WriteString(`,"body":`)
		buf.Write(body)
		buf.WriteByte('}')
	}
	buf.WriteString("]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// batchEntry renders an allocResult as one batch response entry, the
// field-for-field analog of Server.writeResult's headers.
func batchEntry(name string, r allocResult) BatchEntry {
	e := BatchEntry{Status: r.status, Artifact: name, Scenario: r.scenario}
	if r.shed != "" {
		e.Shed = r.shed
		e.RetryAfter = admit.RetryAfterSeconds(r.retry)
	}
	if r.status == http.StatusOK {
		e.Cache = r.cache
		e.Degraded = r.degraded
		e.Body = json.RawMessage(r.body)
	} else {
		e.Error = r.errMsg
	}
	return e
}
