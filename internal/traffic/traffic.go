// Package traffic generates the evaluation traffic matrices: a gravity
// model scaled so the optimally-routed maximum link utilization (MLU) hits
// a target in [0.5, 0.7], exactly the §6 methodology. For two-class
// experiments the per-pair traffic is split randomly into high and low
// priority and the low-priority share is scaled up (×2 by default, since
// the network can run closer to saturation with scavenger-class traffic).
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"flexile/internal/te"
)

// GravityOptions configures ApplyGravity.
type GravityOptions struct {
	// Seed drives node masses and the class split. Required for
	// reproducibility; zero is a valid seed.
	Seed int64
	// TargetMLU is the optimal-routing MLU the scaled matrix should reach;
	// 0 means 0.6 (the middle of the paper's [0.5, 0.7] band).
	TargetMLU float64
	// LowScale multiplies the low-priority share in two-class instances;
	// 0 means 2.0 (§6).
	LowScale float64
}

func (o GravityOptions) withDefaults() GravityOptions {
	if o.TargetMLU == 0 {
		o.TargetMLU = 0.6
	}
	if o.LowScale == 0 {
		o.LowScale = 2
	}
	return o
}

// ApplyGravity fills the instance's demands. Single-class instances receive
// the scaled gravity matrix directly; two-class instances (class 0 = high
// priority, class 1 = low priority) receive a random split with the low
// share scaled by LowScale. Instances with three or more classes split the
// matrix evenly across classes.
func ApplyGravity(inst *te.Instance, opt GravityOptions) error {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	g := inst.Topo.G
	n := g.NumNodes()
	// Node masses: exponentiated normals give the heavy-tailed site sizes
	// real WAN matrices show.
	mass := make([]float64, n)
	for i := range mass {
		mass[i] = math.Exp(rng.NormFloat64() * 0.5)
	}
	tm := make([]float64, len(inst.Pairs))
	tot := 0.0
	for p, pr := range inst.Pairs {
		tm[p] = mass[pr[0]] * mass[pr[1]]
		tot += tm[p]
	}
	if tot == 0 {
		return fmt.Errorf("traffic: degenerate gravity matrix")
	}
	// Provisionally route the whole matrix as class 0 to find the optimal
	// concurrent-flow scale z*; optimal MLU of the matrix is 1/z*, so
	// multiplying demands by TargetMLU·z* lands the MLU on target.
	saved := inst.Demand[0]
	inst.Demand[0] = tm
	z, _, _, err := te.MaxConcurrentScale(inst, te.NoFailure(), []int{0})
	inst.Demand[0] = saved
	if err != nil {
		return err
	}
	if math.IsInf(z, 1) || z <= 0 {
		return fmt.Errorf("traffic: cannot scale matrix (z = %v)", z)
	}
	scale := opt.TargetMLU * z
	for p := range tm {
		tm[p] *= scale
	}
	switch len(inst.Classes) {
	case 1:
		copy(inst.Demand[0], tm)
	case 2:
		for p := range tm {
			u := rng.Float64()
			inst.Demand[0][p] = u * tm[p]
			inst.Demand[1][p] = (1 - u) * tm[p] * opt.LowScale
		}
	default:
		share := 1 / float64(len(inst.Classes))
		for k := range inst.Classes {
			for p := range tm {
				inst.Demand[k][p] = tm[p] * share
			}
		}
	}
	return nil
}

// MLU returns the optimal-routing maximum link utilization of the
// instance's current demands (all classes together) with no failures:
// 1/z* where z* is the maximum concurrent-flow scale. An MLU above 1 means
// the demands cannot all be met.
func MLU(inst *te.Instance) (float64, error) {
	z, _, _, err := te.MaxConcurrentScale(inst, te.NoFailure(), nil)
	if err != nil {
		return 0, err
	}
	if z <= 0 {
		return math.Inf(1), nil
	}
	return 1 / z, nil
}

// ApplyUniform sets every flow of every class to the same demand (test and
// example helper).
func ApplyUniform(inst *te.Instance, demand float64) {
	for k := range inst.Classes {
		for p := range inst.Pairs {
			inst.Demand[k][p] = demand
		}
	}
}
