package traffic

import (
	"math"
	"testing"

	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func singleClassInstance(t *testing.T, name string) *te.Instance {
	t.Helper()
	tp := topo.MustLoad(name)
	return te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.999, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
}

func TestGravityHitsTargetMLU(t *testing.T) {
	inst := singleClassInstance(t, "Sprint")
	if err := ApplyGravity(inst, GravityOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	mlu, err := MLU(inst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mlu-0.6) > 1e-6 {
		t.Fatalf("MLU = %v, want 0.6", mlu)
	}
	// Demands positive for every pair.
	for p, d := range inst.Demand[0] {
		if d <= 0 {
			t.Fatalf("pair %d demand %v", p, d)
		}
	}
}

func TestGravityTargetRange(t *testing.T) {
	for _, target := range []float64{0.5, 0.7} {
		inst := singleClassInstance(t, "CWIX")
		if err := ApplyGravity(inst, GravityOptions{Seed: 3, TargetMLU: target}); err != nil {
			t.Fatal(err)
		}
		mlu, err := MLU(inst)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mlu-target) > 1e-6 {
			t.Fatalf("MLU = %v, want %v", mlu, target)
		}
	}
}

func TestGravityDeterministic(t *testing.T) {
	a := singleClassInstance(t, "Sprint")
	b := singleClassInstance(t, "Sprint")
	if err := ApplyGravity(a, GravityOptions{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if err := ApplyGravity(b, GravityOptions{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	for p := range a.Demand[0] {
		if a.Demand[0][p] != b.Demand[0][p] {
			t.Fatal("same seed must give identical demands")
		}
	}
	c := singleClassInstance(t, "Sprint")
	if err := ApplyGravity(c, GravityOptions{Seed: 10}); err != nil {
		t.Fatal(err)
	}
	same := true
	for p := range a.Demand[0] {
		if a.Demand[0][p] != c.Demand[0][p] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different demands")
	}
}

func TestGravityTwoClassSplit(t *testing.T) {
	tp := topo.MustLoad("Sprint")
	inst := te.NewInstance(tp, []te.Class{
		{Name: "high", Beta: 0.999, Weight: 1000, Tunnels: tunnels.HighPriority(3)},
		{Name: "low", Beta: 0.99, Weight: 1, Tunnels: tunnels.LowPriority(3, 3)},
	})
	if err := ApplyGravity(inst, GravityOptions{Seed: 4}); err != nil {
		t.Fatal(err)
	}
	// Reconstruct the pre-split matrix: high + low/2 must equal the scaled
	// gravity matrix, whose single-class optimal MLU is 0.6.
	probe := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.999, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	for p := range inst.Pairs {
		probe.Demand[0][p] = inst.Demand[0][p] + inst.Demand[1][p]/2
	}
	mlu, err := MLU(probe)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mlu-0.6) > 0.05 {
		t.Fatalf("reconstructed matrix MLU = %v, want ≈0.6", mlu)
	}
	// Every pair has nonnegative demand in both classes and a positive sum.
	for p := range inst.Pairs {
		if inst.Demand[0][p] < 0 || inst.Demand[1][p] < 0 {
			t.Fatalf("negative demand at pair %d", p)
		}
		if inst.Demand[0][p]+inst.Demand[1][p] <= 0 {
			t.Fatalf("zero total demand at pair %d", p)
		}
	}
}

func TestApplyUniform(t *testing.T) {
	inst := singleClassInstance(t, "Sprint")
	ApplyUniform(inst, 2.5)
	for p := range inst.Pairs {
		if inst.Demand[0][p] != 2.5 {
			t.Fatalf("pair %d demand %v", p, inst.Demand[0][p])
		}
	}
}

func TestMLUUniformTriangle(t *testing.T) {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	// One unit on each pair; each pair has a direct unit link plus a 2-hop
	// alternative. z* for the symmetric all-pairs demand is 1.5 → MLU = 2/3.
	te.NoFailure()
	ApplyUniform(inst, 1)
	mlu, err := MLU(inst)
	if err != nil {
		t.Fatal(err)
	}
	if mlu <= 0 || mlu > 1 {
		t.Fatalf("triangle MLU = %v", mlu)
	}
}

func TestGravityThreeClassEvenSplit(t *testing.T) {
	tp := topo.MustLoad("Sprint")
	inst := te.NewInstance(tp, []te.Class{
		{Name: "a", Beta: 0.999, Weight: 100, Tunnels: tunnels.SingleClass(3)},
		{Name: "b", Beta: 0.99, Weight: 10, Tunnels: tunnels.SingleClass(3)},
		{Name: "c", Beta: 0.9, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	if err := ApplyGravity(inst, GravityOptions{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	for p := range inst.Pairs {
		a, b, c := inst.Demand[0][p], inst.Demand[1][p], inst.Demand[2][p]
		if a <= 0 || math.Abs(a-b) > 1e-12 || math.Abs(b-c) > 1e-12 {
			t.Fatalf("pair %d: three-class split not even: %v %v %v", p, a, b, c)
		}
	}
}

func TestGravityLowScaleOption(t *testing.T) {
	tp := topo.MustLoad("Sprint")
	mk := func(scale float64) *te.Instance {
		inst := te.NewInstance(tp, []te.Class{
			{Name: "high", Beta: 0.999, Weight: 1000, Tunnels: tunnels.HighPriority(3)},
			{Name: "low", Beta: 0.99, Weight: 1, Tunnels: tunnels.LowPriority(3, 3)},
		})
		if err := ApplyGravity(inst, GravityOptions{Seed: 5, LowScale: scale}); err != nil {
			t.Fatal(err)
		}
		return inst
	}
	one := mk(1)
	three := mk(3)
	for p := range one.Pairs {
		if one.Demand[1][p] == 0 {
			continue
		}
		ratio := three.Demand[1][p] / one.Demand[1][p]
		if math.Abs(ratio-3) > 1e-9 {
			t.Fatalf("pair %d: LowScale ratio %v, want 3", p, ratio)
		}
	}
}
