package emu

import (
	"math"
	"testing"

	"flexile/internal/failure"
	"flexile/internal/scheme/scenbest"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func triangleInst() *te.Instance {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	return inst
}

// directRouting sends each demanded flow fully over its direct link when
// alive.
func directRouting(inst *te.Instance) *te.Routing {
	r := te.NewRouting(inst)
	for q, s := range inst.Scenarios {
		for i := 0; i < 2; i++ {
			for ti, p := range inst.Tunnels[0][i] {
				if p.Len() == 1 && p.Alive(s.Alive()) {
					r.X[q][0][i][ti] = 1
				}
			}
		}
	}
	return r
}

func TestFluidMatchesModelOnCleanRouting(t *testing.T) {
	inst := triangleInst()
	r := directRouting(inst)
	model := r.LossMatrix(inst)
	for q := range inst.Scenarios {
		res, err := Fluid(inst, r, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < inst.NumFlows(); f++ {
			if math.Abs(res.Loss[f]-model[f][q]) > 1e-9 {
				t.Fatalf("q=%d f=%d fluid %v vs model %v", q, f, res.Loss[f], model[f][q])
			}
		}
	}
}

func TestFluidDropsOverload(t *testing.T) {
	inst := triangleInst()
	r := te.NewRouting(inst)
	// Deliberately oversubscribe link A-B: both flows routed over it.
	// Flow 0 direct (1.0); flow 1 (A-C) via A-B-C (1.0) → A-B load 2.
	for ti, p := range inst.Tunnels[0][0] {
		if p.Len() == 1 {
			r.X[0][0][0][ti] = 1
		}
	}
	for ti, p := range inst.Tunnels[0][1] {
		if p.Len() == 2 {
			r.X[0][0][1][ti] = 1
		}
	}
	res, err := Fluid(inst, r, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A-B passes 1/2 of its offered 2.0; flow 1 additionally crosses B-C
	// (load 1·0.5 ≤ 1, no further drop).
	if math.Abs(res.Loss[0]-0.5) > 1e-9 {
		t.Fatalf("flow 0 loss %v, want 0.5", res.Loss[0])
	}
	if math.Abs(res.Loss[1]-0.5) > 1e-9 {
		t.Fatalf("flow 1 loss %v, want 0.5", res.Loss[1])
	}
}

func TestWeightDiscretization(t *testing.T) {
	inst := triangleInst()
	r := te.NewRouting(inst)
	// Split flow 0 across its two tunnels 0.701/0.299 — with denominator
	// 10 the weights round to 7/3.
	for ti, p := range inst.Tunnels[0][0] {
		if p.Len() == 1 {
			r.X[0][0][0][ti] = 0.701
		} else {
			r.X[0][0][0][ti] = 0.299
		}
	}
	w, rate := weights(inst, r, 0, 0, 0, 10)
	if w == nil {
		t.Fatal("nil weights")
	}
	sum := 0
	for _, x := range w {
		sum += x
	}
	if sum != 10 {
		t.Fatalf("weights %v sum %d", w, sum)
	}
	if math.Abs(rate-1.0) > 1e-9 {
		t.Fatalf("rate %v, want 1 (capped at demand)", rate)
	}
	found7, found3 := false, false
	for _, x := range w {
		if x == 7 {
			found7 = true
		}
		if x == 3 {
			found3 = true
		}
	}
	if !found7 || !found3 {
		t.Fatalf("weights %v, want {7,3}", w)
	}
}

func TestPacketCleanDelivery(t *testing.T) {
	inst := triangleInst()
	r := directRouting(inst)
	res, err := Packet(inst, r, 0, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 2; f++ {
		if res.Loss[f] > 0.02 {
			t.Fatalf("flow %d packet loss %v on a clean direct route", f, res.Loss[f])
		}
	}
}

func TestPacketFailedLinkDropsEverything(t *testing.T) {
	inst := triangleInst()
	r := te.NewRouting(inst)
	// Route flow 0 over its direct link in the scenario where that link is
	// down — everything must be lost.
	qFail := -1
	for q, s := range inst.Scenarios {
		if len(s.Failed) == 1 && s.Failed[0] == 0 {
			qFail = q
		}
	}
	for ti, p := range inst.Tunnels[0][0] {
		if p.Len() == 1 {
			r.X[qFail][0][0][ti] = 1
		}
	}
	res, err := Packet(inst, r, qFail, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss[0] != 1 {
		t.Fatalf("loss over failed link = %v, want 1", res.Loss[0])
	}
}

func TestPacketOverloadApproximatesFluid(t *testing.T) {
	inst := triangleInst()
	r := te.NewRouting(inst)
	for ti, p := range inst.Tunnels[0][0] {
		if p.Len() == 1 {
			r.X[0][0][0][ti] = 1
		}
	}
	for ti, p := range inst.Tunnels[0][1] {
		if p.Len() == 2 {
			r.X[0][0][1][ti] = 1
		}
	}
	res, err := Packet(inst, r, 0, Options{Seed: 3, Ticks: 400})
	if err != nil {
		t.Fatal(err)
	}
	// Both flows share the overloaded A-B link: ~0.5 loss each.
	for f := 0; f < 2; f++ {
		if math.Abs(res.Loss[f]-0.5) > 0.08 {
			t.Fatalf("flow %d loss %v, want ≈0.5", f, res.Loss[f])
		}
	}
}

func TestPacketDeterministicForSeed(t *testing.T) {
	inst := triangleInst()
	r := directRouting(inst)
	a, err := Packet(inst, r, 0, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Packet(inst, r, 0, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.Loss {
		if a.Loss[f] != b.Loss[f] {
			t.Fatal("same seed must reproduce identical results")
		}
	}
}

// TestEmulationVsModelScenBest is the in-miniature Fig. 9c: emulated losses
// track the optimization model's predicted losses closely across all
// scenarios for a real scheme's routing.
func TestEmulationVsModelScenBest(t *testing.T) {
	inst := triangleInst()
	r, err := (&scenbest.Scheme{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	model := r.LossMatrix(inst)
	fluid, err := LossMatrix(inst, r, Fluid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := LossMatrix(inst, r, Packet, Options{Seed: 11, Ticks: 400})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 2; f++ {
		for q := range inst.Scenarios {
			if d := math.Abs(fluid[f][q] - model[f][q]); d > 0.02 {
				t.Fatalf("fluid deviates %v at f=%d q=%d", d, f, q)
			}
			if d := math.Abs(pkt[f][q] - model[f][q]); d > 0.06 {
				t.Fatalf("packet deviates %v at f=%d q=%d (model %v, emu %v)", d, f, q, model[f][q], pkt[f][q])
			}
		}
	}
}

func TestLossMatrixShape(t *testing.T) {
	inst := triangleInst()
	r := directRouting(inst)
	m, err := LossMatrix(inst, r, Fluid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != inst.NumFlows() || len(m[0]) != len(inst.Scenarios) {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
}

func TestWeightsDegenerateRounding(t *testing.T) {
	inst := triangleInst()
	r := te.NewRouting(inst)
	// Two tunnels with minuscule allocations: integer rounding with a
	// small denominator collapses to zero; the fallback must put all
	// weight on the larger share.
	big, small := -1, -1
	for ti, p := range inst.Tunnels[0][0] {
		if p.Len() == 1 {
			big = ti
		} else {
			small = ti
		}
	}
	r.X[0][0][0][big] = 3e-9
	r.X[0][0][0][small] = 1e-9
	w, rate := weights(inst, r, 0, 0, 0, 100)
	if w == nil || w[big] < w[small] {
		t.Fatalf("ratio rounding wrong: %v", w)
	}
	// Denominator 1 with a 0.4/0.3/0.3-style split rounds every weight to
	// zero; the fallback must recover by selecting the largest share.
	r.X[0][0][0][big] = 0.4
	r.X[0][0][0][small] = 0.6 * 0.499 // two-way split keeps both < 0.5
	w, rate = weights(inst, r, 0, 0, 0, 1)
	if w == nil {
		t.Fatal("nil weights for a positive allocation")
	}
	sum := 0
	for _, x := range w {
		sum += x
	}
	if sum == 0 {
		t.Fatalf("degenerate rounding left zero weights: %v", w)
	}
	if w[big] < w[small] {
		t.Fatalf("fallback picked the smaller share: %v", w)
	}
	if rate <= 0 || rate > inst.Demand[0][0] {
		t.Fatalf("rate %v out of range", rate)
	}
}

func TestFluidZeroRouting(t *testing.T) {
	inst := triangleInst()
	r := te.NewRouting(inst)
	res, err := Fluid(inst, r, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{0, 1} {
		if res.Loss[f] != 1 {
			t.Fatalf("flow %d with no allocation must lose all, got %v", f, res.Loss[f])
		}
	}
}
