// Package emu is the repository's stand-in for the paper's Mininet/
// CloudLab emulation testbed (§6.1). It replays a TE scheme's per-scenario
// routing through a network model that reproduces the two discretization
// effects the paper measures in Fig. 9c:
//
//   - tunnel split ratios are rounded to integer select-group weights
//     (Open vSwitch accepts only integer weights), and
//   - traffic is packetized, so per-packet tunnel selection and queueing
//     introduce additional quantization.
//
// Two engines share the same weight discretization: a deterministic fluid
// engine (loads composed per link, proportional overload drops) and a
// packet engine (token-bucket sources, weighted per-packet tunnel choice,
// FIFO drop-tail queues, store-and-forward hops). Per-flow realized loss is
// measured against the original demand, counting both TE throttling and
// in-network drops — exactly the paper's accounting.
package emu

import (
	"fmt"
	"math"

	"flexile/internal/te"
)

// Options configure an emulation run.
type Options struct {
	// WeightDenom is the select-group weight resolution; split ratios are
	// rounded to multiples of 1/WeightDenom. 0 means 100.
	WeightDenom int
	// Ticks is the packet engine's measurement window in ticks; 0 means 200.
	Ticks int
	// DrainTicks lets in-flight packets arrive after sources stop;
	// 0 means 50.
	DrainTicks int
	// PacketSize is the packet engine's packet size in bandwidth units;
	// 0 means (min positive demand)/8.
	PacketSize float64
	// BufferFactor sizes each link queue as BufferFactor×capacity per
	// tick; 0 means 2.
	BufferFactor float64
	// Seed drives the packet engine's hash-based tunnel selection.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.WeightDenom == 0 {
		o.WeightDenom = 100
	}
	if o.Ticks == 0 {
		o.Ticks = 200
	}
	if o.DrainTicks == 0 {
		o.DrainTicks = 50
	}
	if o.BufferFactor == 0 {
		o.BufferFactor = 2
	}
	return o
}

// Result holds per-flow emulated outcomes for one scenario.
type Result struct {
	// Delivered[f] is the bandwidth that reached the destination
	// (units per tick, averaged over the window).
	Delivered []float64
	// Loss[f] is 1 − Delivered/Demand (0 for zero-demand flows).
	Loss []float64
}

// weights discretizes the tunnel split of flow (k,i) in scenario q into
// integer select-group weights over live tunnels. Returns nil when the
// flow sends nothing.
func weights(inst *te.Instance, r *te.Routing, q, k, i, denom int) ([]int, float64) {
	scen := inst.Scenarios[q]
	total := 0.0
	nt := len(inst.Tunnels[k][i])
	raw := make([]float64, nt)
	for t := 0; t < nt; t++ {
		x := r.X[q][k][i][t]
		if x > 0 && inst.TunnelAlive(k, i, t, scen) {
			raw[t] = x
			total += x
		}
	}
	if total <= 0 {
		return nil, 0
	}
	rate := math.Min(total, inst.DemandIn(k, i, q)) // TE throttles at the demand
	w := make([]int, nt)
	sum := 0
	for t := 0; t < nt; t++ {
		w[t] = int(math.Round(raw[t] / total * float64(denom)))
		sum += w[t]
	}
	if sum == 0 {
		// Degenerate rounding (all ratios tiny): put everything on the
		// largest share.
		best := 0
		for t := 1; t < nt; t++ {
			if raw[t] > raw[best] {
				best = t
			}
		}
		w[best] = denom
	}
	return w, rate
}

// Fluid runs the deterministic fluid engine for one scenario: tunnel rates
// follow the integer weights, each link drops the proportional overload of
// its offered load, and drops compose along each tunnel's path.
func Fluid(inst *te.Instance, r *te.Routing, q int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if q < 0 || q >= len(inst.Scenarios) {
		return nil, fmt.Errorf("emu: scenario %d out of range", q)
	}
	g := inst.Topo.G
	scen := inst.Scenarios[q]
	type tun struct {
		k, i, t int
		rate    float64
	}
	var tuns []tun
	load := make([]float64, g.NumEdges())
	for k := range inst.Classes {
		for i := range inst.Pairs {
			w, rate := weights(inst, r, q, k, i, opt.WeightDenom)
			if w == nil {
				continue
			}
			sum := 0
			for _, x := range w {
				sum += x
			}
			for t, wt := range w {
				if wt == 0 {
					continue
				}
				tr := rate * float64(wt) / float64(sum)
				tuns = append(tuns, tun{k, i, t, tr})
				for _, e := range inst.Tunnels[k][i][t].Edges {
					load[e] += tr
				}
			}
		}
	}
	pass := make([]float64, g.NumEdges())
	for e := range pass {
		cap := g.Edge(e).Capacity
		if scen.IsFailed(e) {
			cap = 0
		}
		if load[e] <= cap || load[e] == 0 {
			pass[e] = 1
		} else {
			pass[e] = cap / load[e]
		}
	}
	res := newResult(inst)
	for _, tn := range tuns {
		frac := 1.0
		for _, e := range inst.Tunnels[tn.k][tn.i][tn.t].Edges {
			frac *= pass[e]
		}
		res.Delivered[inst.FlowID(tn.k, tn.i)] += tn.rate * frac
	}
	finishResult(inst, res, q)
	return res, nil
}

func newResult(inst *te.Instance) *Result {
	return &Result{
		Delivered: make([]float64, inst.NumFlows()),
		Loss:      make([]float64, inst.NumFlows()),
	}
}

func finishResult(inst *te.Instance, res *Result, q int) {
	for f := range res.Loss {
		k, i := inst.FlowOf(f)
		d := inst.DemandIn(k, i, q)
		if d <= 0 {
			continue
		}
		if res.Delivered[f] > d {
			res.Delivered[f] = d
		}
		l := 1 - res.Delivered[f]/d
		res.Loss[f] = math.Max(0, math.Min(1, l))
	}
}

// LossMatrix emulates every scenario with the given engine and returns the
// flow×scenario loss matrix in the shape the eval package consumes.
func LossMatrix(inst *te.Instance, r *te.Routing, engine func(*te.Instance, *te.Routing, int, Options) (*Result, error), opt Options) ([][]float64, error) {
	out := make([][]float64, inst.NumFlows())
	for f := range out {
		out[f] = make([]float64, len(inst.Scenarios))
	}
	for q := range inst.Scenarios {
		res, err := engine(inst, r, q, opt)
		if err != nil {
			return nil, err
		}
		for f := range out {
			out[f][q] = res.Loss[f]
		}
	}
	return out, nil
}
