package emu

import (
	"math"
	"testing"

	"flexile/internal/te"
)

// routeTwoHop routes flow 1 (A-C) over its two-hop A-B-C tunnel in every
// scenario where that path is alive, and flow 0 over its direct link.
func routeTwoHop(inst *te.Instance) *te.Routing {
	r := te.NewRouting(inst)
	for q, s := range inst.Scenarios {
		for ti, p := range inst.Tunnels[0][0] {
			if p.Len() == 1 && p.Alive(s.Alive()) {
				r.X[q][0][0][ti] = 1
			}
		}
		for ti, p := range inst.Tunnels[0][1] {
			if p.Len() == 2 && p.Alive(s.Alive()) {
				r.X[q][0][1][ti] = 1
			}
		}
	}
	return r
}

// TestEngineBoundaries drives both engines through the degenerate corners
// of the Options/workload space — zero-demand flows, demands of a single
// packet, packets larger than a link's per-tick capacity, queues smaller
// than one packet — and checks the loss accounting stays sane and the two
// engines stay within tolerance of each other. The oversized-packet and
// tiny-buffer rows pin the two silent-blackhole bugs this file's fixes
// removed: before them the packet engine reported total loss on workloads
// the fluid engine (and the optimization model) called lossless.
func TestEngineBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		setup func(inst *te.Instance) // mutate demands before routing
		opt   Options
		// wantLoss[f] bounds each flow's packet-engine loss; NaN skips.
		wantLossAtMost []float64
		fluidGapAtMost float64 // max |fluid-packet| per flow
	}{
		{
			name:           "zero-demand flow",
			setup:          func(inst *te.Instance) { inst.Demand[0][1] = 0 },
			wantLossAtMost: []float64{0.05, 0},
			fluidGapAtMost: 0.05,
		},
		{
			name: "all demands zero",
			setup: func(inst *te.Instance) {
				inst.Demand[0][0] = 0
				inst.Demand[0][1] = 0
			},
			wantLossAtMost: []float64{0, 0},
			fluidGapAtMost: 0,
		},
		{
			name:           "single-packet demand",
			setup:          func(inst *te.Instance) { inst.Demand[0][1] = 0.01 },
			opt:            Options{PacketSize: 0.01},
			wantLossAtMost: []float64{0.05, 0.05},
			fluidGapAtMost: 0.05,
		},
		{
			name: "packet larger than per-tick capacity",
			// 4 ticks of serialization per packet: the link banks credit
			// and delivers late rather than never.
			opt:            Options{PacketSize: 4},
			wantLossAtMost: []float64{0.2, 0.2},
			fluidGapAtMost: 0.2,
		},
		{
			name: "buffer smaller than one packet",
			// bufMax clamps to one packet. Demand of exactly one packet
			// per tick keeps the source unbursty, so that single slot is
			// all an uncongested link needs: near-lossless, where the
			// unclamped queue rejected every push.
			setup: func(inst *te.Instance) {
				inst.Demand[0][0] = 0.05
				inst.Demand[0][1] = 0.05
			},
			opt:            Options{BufferFactor: 1e-6, PacketSize: 0.05},
			wantLossAtMost: []float64{0.05, 0.05},
			fluidGapAtMost: 0.05,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := triangleInst()
			if tc.setup != nil {
				tc.setup(inst)
			}
			r := directRouting(inst)
			pkt, err := Packet(inst, r, 0, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			fl, err := Fluid(inst, r, 0, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for f := 0; f < inst.NumFlows(); f++ {
				if f < len(tc.wantLossAtMost) && !math.IsNaN(tc.wantLossAtMost[f]) {
					if pkt.Loss[f] > tc.wantLossAtMost[f]+1e-12 {
						t.Errorf("flow %d: packet loss %v, want <= %v", f, pkt.Loss[f], tc.wantLossAtMost[f])
					}
				}
				if gap := math.Abs(pkt.Loss[f] - fl.Loss[f]); gap > tc.fluidGapAtMost+1e-12 {
					t.Errorf("flow %d: |packet-fluid| = %v (packet %v, fluid %v), want <= %v",
						f, gap, pkt.Loss[f], fl.Loss[f], tc.fluidGapAtMost)
				}
				if pkt.Delivered[f] < 0 || pkt.Loss[f] < 0 || pkt.Loss[f] > 1 {
					t.Errorf("flow %d: insane accounting: delivered %v loss %v", f, pkt.Delivered[f], pkt.Loss[f])
				}
			}
		})
	}
}

// TestFullyPartitionedScenario finds the all-links-failed scenario and
// checks both engines report total loss for every demanded flow — no
// phantom delivery through dead links, no NaNs from the empty topology.
func TestFullyPartitionedScenario(t *testing.T) {
	inst := triangleInst()
	r := directRouting(inst)
	dead := -1
	for q, s := range inst.Scenarios {
		if len(s.Failed) == 3 {
			dead = q
			break
		}
	}
	if dead < 0 {
		t.Fatal("enumeration lost the all-failed scenario")
	}
	for name, engine := range map[string]func(*te.Instance, *te.Routing, int, Options) (*Result, error){
		"fluid": Fluid, "packet": Packet,
	} {
		res, err := engine(inst, r, dead, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for f := 0; f < inst.NumFlows(); f++ {
			if res.Delivered[f] != 0 {
				t.Errorf("%s flow %d: delivered %v through a fully failed topology", name, f, res.Delivered[f])
			}
			want := 1.0 // total loss for demanded flows ...
			if inst.FlowDemand(f) == 0 {
				want = 0 // ... and zero, not NaN, for undemanded ones
			}
			if res.Loss[f] != want {
				t.Errorf("%s flow %d: loss %v, want %v", name, f, res.Loss[f], want)
			}
		}
	}
}

// TestDrainTicksBoundary pins DrainTicks semantics on a two-hop path:
// packets in flight when the measurement window closes still count if
// they arrive during the drain, so a longer drain never reports more
// loss, and the default drain is long enough that an uncongested two-hop
// flow measures (near) lossless.
func TestDrainTicksBoundary(t *testing.T) {
	inst := triangleInst()
	// Only the two-hop flow sends, so neither hop is oversubscribed and
	// any measured loss is purely in-flight packets the drain didn't wait
	// for.
	inst.Demand[0][0] = 0
	r := routeTwoHop(inst)
	lossAt := func(drain int) float64 {
		t.Helper()
		res, err := Packet(inst, r, 0, Options{DrainTicks: drain})
		if err != nil {
			t.Fatal(err)
		}
		return res.Loss[1]
	}
	short, dflt := lossAt(1), lossAt(0) // 0 means the 50-tick default
	if dflt > short+1e-12 {
		t.Fatalf("longer drain increased loss: drain=1 %v vs default %v", short, dflt)
	}
	if dflt > 0.05 {
		t.Fatalf("uncongested two-hop flow lost %v with default drain", dflt)
	}
}
