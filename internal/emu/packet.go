package emu

import (
	"fmt"
	"math"

	"flexile/internal/te"
)

// packet is one in-flight unit of traffic.
type packet struct {
	flow int // flow id
	size float64
	path []int // remaining edges to traverse
	hop  int   // next edge index within path
}

// linkQueue is a FIFO drop-tail queue in front of one link direction.
// Links are modeled undirected with a shared queue, matching the
// undirected capacity model used by the optimization.
type linkQueue struct {
	buf      []packet
	bytes    float64
	capacity float64 // units transmitted per tick
	bufMax   float64 // queue size bound in units
	credit   float64 // capacity banked while an oversized packet stalls the head
	alive    bool
}

func (l *linkQueue) push(p packet) bool {
	if !l.alive || l.bytes+p.size > l.bufMax {
		return false
	}
	l.buf = append(l.buf, p)
	l.bytes += p.size
	return true
}

// Packet runs the packet-level engine for one scenario: token-bucket
// sources at the TE-allotted rate, per-packet weighted tunnel selection
// with a deterministic hash (the OVS select-group behaviour), and
// store-and-forward FIFO queues with drop-tail losses.
func Packet(inst *te.Instance, r *te.Routing, q int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if q < 0 || q >= len(inst.Scenarios) {
		return nil, fmt.Errorf("emu: scenario %d out of range", q)
	}
	g := inst.Topo.G
	scen := inst.Scenarios[q]

	pktSize := opt.PacketSize
	if pktSize == 0 {
		minD := math.Inf(1)
		total := 0.0
		for f := 0; f < inst.NumFlows(); f++ {
			if d := inst.FlowDemand(f); d > 0 {
				total += d
				if d < minD {
					minD = d
				}
			}
		}
		if math.IsInf(minD, 1) {
			return newResult(inst), nil
		}
		// Resolve the smallest flow into a few packets per tick, but cap
		// the aggregate packet rate so heavy-tailed demand distributions
		// don't explode the simulation cost.
		pktSize = minD / 8
		if lo := total / 20000; pktSize < lo {
			pktSize = lo
		}
	}

	links := make([]linkQueue, g.NumEdges())
	for e := range links {
		cap := g.Edge(e).Capacity
		bufMax := cap * opt.BufferFactor
		// A queue that cannot hold even one packet rejects every push —
		// another silent blackhole the fluid engine has no analogue for.
		// Any live link buffers at least the packet in transmission.
		if bufMax < pktSize {
			bufMax = pktSize
		}
		links[e] = linkQueue{
			capacity: cap,
			bufMax:   bufMax,
			alive:    !scen.IsFailed(e),
		}
	}

	type source struct {
		flow    int
		k, i    int
		rate    float64 // units per tick
		weights []int
		wsum    int
		credit  float64
		counter uint64
	}
	var sources []source
	for k := range inst.Classes {
		for i := range inst.Pairs {
			w, rate := weights(inst, r, q, k, i, opt.WeightDenom)
			if w == nil || rate <= 0 {
				continue
			}
			sum := 0
			for _, x := range w {
				sum += x
			}
			sources = append(sources, source{
				flow: inst.FlowID(k, i), k: k, i: i,
				rate: rate, weights: w, wsum: sum,
				counter: splitmix(uint64(opt.Seed) ^ uint64(inst.FlowID(k, i))*0x9e3779b97f4a7c15),
			})
		}
	}

	res := newResult(inst)
	delivered := make([]float64, inst.NumFlows())

	for tick := 0; tick < opt.Ticks+opt.DrainTicks; tick++ {
		// Sources emit during the measurement window only. Emission is
		// interleaved round-robin across sources (one packet per source per
		// pass) so synchronized bursts don't phase-lock the drop-tail
		// queues — on a shared wire packets from different hosts mix.
		if tick < opt.Ticks {
			for si := range sources {
				sources[si].credit += sources[si].rate
			}
			for emitted := true; emitted; {
				emitted = false
				for si := range sources {
					s := &sources[si]
					if s.credit < pktSize {
						continue
					}
					s.credit -= pktSize
					emitted = true
					// Weighted per-packet tunnel pick via a deterministic
					// hash sequence (select-group semantics).
					s.counter = splitmix(s.counter)
					pick := int(s.counter % uint64(s.wsum))
					tIdx := 0
					for t, wt := range s.weights {
						if pick < wt {
							tIdx = t
							break
						}
						pick -= wt
						tIdx = t
					}
					path := inst.Tunnels[s.k][s.i][tIdx].Edges
					if len(path) == 0 {
						continue
					}
					links[path[0]].push(packet{flow: s.flow, size: pktSize, path: path}) // drop-tail if full
				}
			}
		}
		// Links transmit up to their capacity per tick. Forwarded packets
		// are staged and enqueued after every link has transmitted, so a
		// packet advances at most one hop per tick regardless of edge
		// iteration order (store-and-forward).
		var staged []packet
		for e := range links {
			l := &links[e]
			if !l.alive {
				l.buf = nil
				l.bytes = 0
				continue
			}
			// A packet larger than the per-tick capacity takes several
			// ticks on the wire: the link banks unused capacity while the
			// head of the queue stalls, instead of never transmitting (a
			// serialization-delay model; without it any PacketSize above a
			// link's capacity silently blackholed the link, a loss the
			// fluid engine never accounts). Idle links bank nothing, and a
			// tick that transmits resets the bank — so when every packet
			// fits in one tick this is the plain budget-per-tick model.
			budget := l.credit + l.capacity
			n := 0
			for _, p := range l.buf {
				if p.size > budget {
					break
				}
				budget -= p.size
				l.bytes -= p.size
				n++
				p.hop++
				if p.hop >= len(p.path) {
					delivered[p.flow] += p.size
				} else {
					staged = append(staged, p)
				}
			}
			l.buf = l.buf[n:]
			if n > 0 || len(l.buf) == 0 {
				l.credit = 0
			} else {
				l.credit = budget
			}
		}
		for _, p := range staged {
			links[p.path[p.hop]].push(p) // drop-tail if the next queue is full
		}
	}
	window := float64(opt.Ticks)
	for f := range delivered {
		res.Delivered[f] = delivered[f] / window
	}
	finishResult(inst, res, q)
	return res, nil
}

// splitmix is SplitMix64, a tiny deterministic hash/PRNG step.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
