package lp

import (
	"context"
	"fmt"
	"time"

	"flexile/internal/obs"
)

// BatchProblem is a compiled linear program: the sparse column structure of
// a Problem, frozen once, ready to be re-solved any number of times under
// different bounds and costs. It exists for workloads like the flexile
// Benders decomposition, where hundreds of scenario LPs share one
// constraint matrix and differ only in their right-hand sides: compiling
// once removes the per-solve column build and the per-solve workspace
// allocation that a plain Problem.SolveCtx pays.
//
// The compiled structure references the Problem's rows; the Problem's
// coefficient structure (AddRow/AddCol) must not change after Compile.
// Bounds and costs on the Problem may still be mutated — a solve with a
// zero Variant reads them fresh — or supplied per solve via Variant.
type BatchProblem struct {
	base   *Problem
	n, m   int
	colPtr []int
	colIdx []int32
	colVal []float64
}

// Compile freezes the problem's constraint structure for batched solving.
// Adding rows or columns (or editing row entries) after Compile is a
// caller bug; bound and cost mutations remain allowed.
func (p *Problem) Compile() (*BatchProblem, error) {
	ptr, idx, val, err := compileColumns(p)
	if err != nil {
		return nil, err
	}
	return &BatchProblem{
		base:   p,
		n:      p.NumCols(),
		m:      p.NumRows(),
		colPtr: ptr,
		colIdx: idx,
		colVal: val,
	}, nil
}

// NumCols reports the number of structural variables of the compiled LP.
func (bp *BatchProblem) NumCols() int { return bp.n }

// NumRows reports the number of constraints of the compiled LP.
func (bp *BatchProblem) NumRows() int { return bp.m }

// Variant overrides parts of the base problem for one solve. Every nil
// slice falls back to the base Problem's current values; a non-nil slice
// must have exactly one entry per row (RowLB, RowUB) or column (ColLB,
// ColUB, Cost). The slices are read during the solve and not retained.
type Variant struct {
	RowLB, RowUB []float64
	ColLB, ColUB []float64
	Cost         []float64
}

// BatchSolver solves Variants of one compiled problem, reusing the entire
// simplex workspace (bounds, statuses, the dense basis inverse, scratch
// vectors) across solves. It is NOT safe for concurrent use: create one
// solver per goroutine with NewSolver — they can share the BatchProblem,
// which is immutable after Compile.
type BatchSolver struct {
	bp *BatchProblem
	s  *simplex
}

// NewSolver returns a solver with its own workspace over the compiled
// problem.
func (bp *BatchProblem) NewSolver() *BatchSolver {
	s := &simplex{
		p:      bp.base,
		n:      bp.n,
		m:      bp.m,
		colPtr: bp.colPtr,
		colIdx: bp.colIdx,
		colVal: bp.colVal,
	}
	s.allocate()
	return &BatchSolver{bp: bp, s: s}
}

// Solve optimizes one variant with background context.
func (bs *BatchSolver) Solve(v Variant, opts Options) (*Solution, error) {
	return bs.SolveCtx(context.Background(), v, opts)
}

// SolveCtx optimizes one variant. Semantics match Problem.SolveCtx exactly
// — same status reporting, same cancellation behavior, same observability
// counters — and the result is bit-identical to solving the equivalent
// freshly built Problem with the same Options: the reused workspace is
// fully reinitialized per solve, so no state leaks between variants.
func (bs *BatchSolver) SolveCtx(ctx context.Context, v Variant, opts Options) (*Solution, error) {
	col := obs.From(ctx)
	var start time.Time
	if col != nil {
		start = time.Now()
	}
	s := bs.s
	if err := s.reinit(v, opts); err != nil {
		if col != nil {
			col.AddLP(obs.LPMetrics{Solves: 1, Errors: 1})
		}
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.ctx = ctx
	s.deadline = time.Time{}
	if opts.Timeout > 0 {
		s.deadline = time.Now().Add(opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (s.deadline.IsZero() || d.Before(s.deadline)) {
		s.deadline = d
	}
	sol, err := s.solve()
	if col != nil {
		elapsed := time.Since(start)
		col.AddLP(s.metrics(sol, err, elapsed))
		col.ObserveLatency(obs.LatLPSolve, elapsed)
	}
	return sol, err
}

// reinit loads the variant's bounds and costs into the reused workspace and
// clears every piece of per-solve state a fresh simplex would start with.
func (s *simplex) reinit(v Variant, opts Options) error {
	n, m, p := s.n, s.m, s.p
	pick := func(name string, want int, override, base []float64) ([]float64, error) {
		if override == nil {
			return base, nil
		}
		if len(override) != want {
			return nil, fmt.Errorf("lp: variant %s has %d entries, want %d", name, len(override), want)
		}
		return override, nil
	}
	colLB, err := pick("ColLB", n, v.ColLB, p.colLB)
	if err != nil {
		return err
	}
	colUB, err := pick("ColUB", n, v.ColUB, p.colUB)
	if err != nil {
		return err
	}
	rowLB, err := pick("RowLB", m, v.RowLB, p.rowLB)
	if err != nil {
		return err
	}
	rowUB, err := pick("RowUB", m, v.RowUB, p.rowUB)
	if err != nil {
		return err
	}
	cost, err := pick("Cost", n, v.Cost, p.obj)
	if err != nil {
		return err
	}
	copy(s.lb, colLB)
	copy(s.ub, colUB)
	for i := 0; i < m; i++ {
		s.lb[n+i] = rowLB[i]
		s.ub[n+i] = rowUB[i]
	}
	copy(s.cost, cost)
	s.opts = opts.withDefaults(m, n)

	// Per-solve counters and flags, exactly the zero state of newSimplex.
	// Basis state (status, xval, basis, inBpos, xB, binv) needs no clearing:
	// solve() rebuilds it via resetToLogicalBasis/installBasis before any
	// read.
	s.pivots = 0
	s.sinceRefactor = 0
	s.phase1Pivots = 0
	s.phase2Pivots = 0
	s.boundFlips = 0
	s.degenPivots = 0
	s.blandActs = 0
	s.refactors = 0
	s.singularRestarts = 0
	s.etaPivots = 0
	s.warmAccepted = false
	s.warmRejected = false
	s.trueCost = s.trueCost[:0]
	return s.validate()
}
