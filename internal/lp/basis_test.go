package lp

import (
	"math/rand"
	"testing"
)

// TestWarmStartSameProblem: re-solving from the optimal basis takes (near)
// zero pivots and reproduces the optimum.
func TestWarmStartSameProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p, _ := randomFeasibleLP(rng, 12, 16)
	cold, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal {
		t.Skip("random LP not optimal")
	}
	warm, err := p.SolveOpts(Options{StartBasis: cold.Basis()})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm status %v", warm.Status)
	}
	if !approx(warm.Objective, cold.Objective) {
		t.Fatalf("warm obj %v vs cold %v", warm.Objective, cold.Objective)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
}

// TestWarmStartAfterBoundChange: the branch-and-bound pattern — fix one
// variable and re-solve from the parent basis. The result must match a
// cold solve exactly and generally in fewer pivots.
func TestWarmStartAfterBoundChange(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	warmTotal, coldTotal := 0, 0
	for trial := 0; trial < 30; trial++ {
		p, _ := randomFeasibleLP(rng, 10, 14)
		base, err := p.Solve()
		if err != nil || base.Status != Optimal {
			continue
		}
		// Fix a random column to one of its bounds.
		j := rng.Intn(p.NumCols())
		lb, ub := p.ColLB(j), p.ColUB(j)
		fixAt := lb
		if rng.Intn(2) == 0 {
			fixAt = ub
		}
		p.SetColBounds(j, fixAt, fixAt)

		cold, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		warm, err := p.SolveOpts(Options{StartBasis: base.Basis()})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status != warm.Status {
			t.Fatalf("trial %d: statuses differ: cold %v warm %v", trial, cold.Status, warm.Status)
		}
		if cold.Status == Optimal && !approx(cold.Objective, warm.Objective) {
			t.Fatalf("trial %d: cold %v warm %v", trial, cold.Objective, warm.Objective)
		}
		warmTotal += warm.Iterations
		coldTotal += cold.Iterations
		p.SetColBounds(j, lb, ub)
	}
	if warmTotal > coldTotal {
		t.Logf("warm %d vs cold %d iterations (warm start not helping on tiny LPs is acceptable)", warmTotal, coldTotal)
	}
}

// TestWarmStartIncompatibleIgnored: a basis from a different problem shape
// must be ignored, not crash.
func TestWarmStartIncompatibleIgnored(t *testing.T) {
	p1 := NewProblem()
	a := p1.AddCol("a", 0, 1, -1)
	p1.AddLE("r", 1, Entry{a, 1})
	s1, err := p1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewProblem()
	x := p2.AddCol("x", 0, 5, -1)
	y := p2.AddCol("y", 0, 5, -1)
	p2.AddLE("r", 6, Entry{x, 1}, Entry{y, 1})
	s2, err := p2.SolveOpts(Options{StartBasis: s1.Basis()})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != Optimal || !approx(s2.Objective, -6) {
		t.Fatalf("status %v obj %v", s2.Status, s2.Objective)
	}
}

// TestBasisRecorded: every optimal solve carries a basis.
func TestBasisRecorded(t *testing.T) {
	p := NewProblem()
	x := p.AddCol("x", 0, 3, -1)
	p.AddLE("r", 2, Entry{x, 1})
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Basis() == nil {
		t.Fatal("no basis recorded")
	}
	if len(s.Basis().colStat) != 1 || len(s.Basis().rowStat) != 1 {
		t.Fatal("basis shape wrong")
	}
}

func BenchmarkWarmVsColdResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	p, _ := randomFeasibleLP(rng, 60, 80)
	base, err := p.Solve()
	if err != nil || base.Status != Optimal {
		b.Skip("base not optimal")
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.SolveOpts(Options{StartBasis: base.Basis()}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
