package lp

import (
	"math"
	"math/rand"
	"testing"
)

// propertyTrials is the size of the random-LP battery. Every instance is
// feasible by construction (a random interior point generates the row
// bounds) and bounded (finite column boxes), so Optimal is the only
// acceptable status and the full primal/dual optimality theory applies.
const propertyTrials = 200

// dualObjective recomputes the dual objective from the reported row duals
// and reduced costs: Σ_i y_i·b_i + Σ_j d_j·l_j, where each multiplier pays
// the bound its sign says is binding (y_i > 0 ⇒ the ≥ side, y_i < 0 ⇒ the
// ≤ side; reduced costs likewise against the column box). By LP duality
// this must equal the primal objective at an optimal basis.
func dualObjective(t *testing.T, trial int, p *Problem, s *Solution) float64 {
	t.Helper()
	const dtol = 1e-7
	obj := 0.0
	for i := 0; i < p.NumRows(); i++ {
		y := s.RowDual[i]
		if math.Abs(y) <= dtol {
			continue
		}
		b := p.rowUB[i]
		if y > 0 {
			b = p.rowLB[i]
		}
		if math.IsInf(b, 0) {
			t.Fatalf("trial %d: row %d dual %v prices an infinite bound", trial, i, y)
		}
		obj += y * b
	}
	for j := 0; j < p.NumCols(); j++ {
		d := s.ColDual[j]
		if math.Abs(d) <= dtol {
			continue
		}
		b := p.colUB[j]
		if d > 0 {
			b = p.colLB[j]
		}
		if math.IsInf(b, 0) {
			t.Fatalf("trial %d: col %d reduced cost %v prices an infinite bound", trial, j, d)
		}
		obj += d * b
	}
	return obj
}

// checkComplementarySlackness asserts that every nonzero multiplier has its
// constraint binding at the side the multiplier's sign selects, and every
// slack constraint has a (near-)zero multiplier's worth of freedom: y_i > 0
// ⇒ a_i·x = rowLB_i, y_i < 0 ⇒ a_i·x = rowUB_i, and the same for reduced
// costs against the column box.
func checkComplementarySlackness(t *testing.T, trial int, p *Problem, s *Solution) {
	t.Helper()
	const dtol = 1e-7
	const atol = 1e-6
	for i := 0; i < p.NumRows(); i++ {
		y, act := s.RowDual[i], s.RowValue[i]
		switch {
		case y > dtol:
			if math.Abs(act-p.rowLB[i]) > atol*(1+math.Abs(p.rowLB[i])) {
				t.Fatalf("trial %d: row %d has dual %v but activity %v is off its lower bound %v",
					trial, i, y, act, p.rowLB[i])
			}
		case y < -dtol:
			if math.Abs(act-p.rowUB[i]) > atol*(1+math.Abs(p.rowUB[i])) {
				t.Fatalf("trial %d: row %d has dual %v but activity %v is off its upper bound %v",
					trial, i, y, act, p.rowUB[i])
			}
		}
	}
	for j := 0; j < p.NumCols(); j++ {
		d, x := s.ColDual[j], s.X[j]
		// A fixed column (lb == ub) is trivially at both bounds.
		switch {
		case d > dtol:
			if math.Abs(x-p.colLB[j]) > atol*(1+math.Abs(p.colLB[j])) {
				t.Fatalf("trial %d: col %d has reduced cost %v but x=%v is off its lower bound %v",
					trial, j, d, x, p.colLB[j])
			}
		case d < -dtol:
			if math.Abs(x-p.colUB[j]) > atol*(1+math.Abs(p.colUB[j])) {
				t.Fatalf("trial %d: col %d has reduced cost %v but x=%v is off its upper bound %v",
					trial, j, d, x, p.colUB[j])
			}
		}
	}
}

// TestPropertyStrongDuality: on the full battery, the primal objective, the
// dual objective recomputed from the reported multipliers, and the
// SolveDualized objective all agree within 1e-6, the solution is feasible,
// and complementary slackness holds at the final basis.
func TestPropertyStrongDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < propertyTrials; trial++ {
		m := 1 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		p, _ := randomFeasibleLP(rng, m, n)
		s, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: feasible bounded LP finished %v", trial, s.Status)
		}
		checkFeasible(t, p, s.X, trial)
		if dual := dualObjective(t, trial, p, s); !approx(s.Objective, dual) {
			t.Fatalf("trial %d: strong duality violated: primal %v, dual %v (gap %v)",
				trial, s.Objective, dual, s.Objective-dual)
		}
		checkComplementarySlackness(t, trial, p, s)

		d, err := p.SolveDualized()
		if err != nil {
			t.Fatalf("trial %d: dualized: %v", trial, err)
		}
		if d.Status != Optimal {
			t.Fatalf("trial %d: dualized path finished %v", trial, d.Status)
		}
		if !approx(s.Objective, d.Objective) {
			t.Fatalf("trial %d: primal obj %v vs dualized %v", trial, s.Objective, d.Objective)
		}
		checkFeasible(t, p, d.X, trial)
	}
}

// TestPropertyBlandAgreesWithDefault: Bland's rule takes a different pivot
// path but must land on the same optimal value as the default (Dantzig +
// perturbation) pricing, and its duals must satisfy the same optimality
// conditions.
func TestPropertyBlandAgreesWithDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < propertyTrials; trial++ {
		m := 1 + rng.Intn(8)
		n := 2 + rng.Intn(8)
		p, _ := randomFeasibleLP(rng, m, n)
		def, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: default: %v", trial, err)
		}
		bl, err := p.SolveOpts(Options{Bland: true})
		if err != nil {
			t.Fatalf("trial %d: bland: %v", trial, err)
		}
		if def.Status != Optimal || bl.Status != Optimal {
			t.Fatalf("trial %d: statuses default=%v bland=%v", trial, def.Status, bl.Status)
		}
		if !approx(def.Objective, bl.Objective) {
			t.Fatalf("trial %d: default obj %v vs Bland obj %v", trial, def.Objective, bl.Objective)
		}
		checkFeasible(t, p, bl.X, trial)
		if dual := dualObjective(t, trial, p, bl); !approx(bl.Objective, dual) {
			t.Fatalf("trial %d: Bland solve violates strong duality: primal %v, dual %v",
				trial, bl.Objective, dual)
		}
		checkComplementarySlackness(t, trial, p, bl)
	}
}

// TestPropertyObjectiveMatchesCostDotX: the reported objective must equal
// c·X exactly as extracted (guards against perturbation residue leaking
// into the reported value).
func TestPropertyObjectiveMatchesCostDotX(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		p, _ := randomFeasibleLP(rng, 2+rng.Intn(6), 2+rng.Intn(6))
		s, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dot := 0.0
		for j := 0; j < p.NumCols(); j++ {
			dot += p.Cost(j) * s.X[j]
		}
		if math.Abs(dot-s.Objective) > 1e-9*(1+math.Abs(dot)) {
			t.Fatalf("trial %d: objective %v but c·x = %v", trial, s.Objective, dot)
		}
	}
}
