package lp

import "math"

// Basis captures the simplex basis of a solved problem so a subsequent
// solve of a *slightly modified* problem (changed bounds or costs, same
// rows and columns) can start from it instead of from scratch. This is the
// standard warm-start mechanism branch-and-bound needs: a child node
// differs from its parent only in one variable's bounds, so re-solving
// from the parent's basis typically takes a handful of pivots instead of
// hundreds.
type Basis struct {
	// colStat[j] ∈ {nonbasicLower, nonbasicUpper, nonbasicFree, basic} per
	// structural column; rowStat likewise for the logical variable of each
	// row.
	colStat []varStatus
	rowStat []varStatus
}

// Basis returns the final basis of the solve, or nil if the solution did
// not record one.
func (s *Solution) Basis() *Basis { return s.basis }

// snapshotBasis records the current basis of a simplex run.
func (s *simplex) snapshotBasis() *Basis {
	b := &Basis{
		colStat: make([]varStatus, s.n),
		rowStat: make([]varStatus, s.m),
	}
	copy(b.colStat, s.status[:s.n])
	copy(b.rowStat, s.status[s.n:])
	return b
}

// installBasis initializes the simplex state from a stored basis: statuses
// are restored (clamped to the current bounds), the basis inverse is
// refactorized from the recorded basic set, and the basic values are
// recomputed. If the recorded basic set is singular or has the wrong size,
// installation fails and the caller falls back to the cold start.
func (s *simplex) installBasis(b *Basis) bool {
	if b == nil || len(b.colStat) != s.n || len(b.rowStat) != s.m {
		return false
	}
	nBasic := 0
	for _, st := range b.colStat {
		if st == basic {
			nBasic++
		}
	}
	for _, st := range b.rowStat {
		if st == basic {
			nBasic++
		}
	}
	if nBasic != s.m {
		return false
	}
	for v := 0; v < s.n+s.m; v++ {
		s.inBpos[v] = -1
	}
	pos := 0
	assign := func(v int, st varStatus) {
		s.status[v] = st
		switch st {
		case basic:
			s.basis[pos] = v
			s.inBpos[v] = pos
			pos++
		case nonbasicLower:
			if math.IsInf(s.lb[v], -1) {
				// The bound this status referred to no longer exists.
				s.xval[v], s.status[v] = initialValue(s.lb[v], s.ub[v])
				return
			}
			s.xval[v] = s.lb[v]
		case nonbasicUpper:
			if math.IsInf(s.ub[v], 1) {
				s.xval[v], s.status[v] = initialValue(s.lb[v], s.ub[v])
				return
			}
			s.xval[v] = s.ub[v]
		default:
			s.xval[v] = 0
		}
	}
	for j := 0; j < s.n; j++ {
		assign(j, b.colStat[j])
	}
	for i := 0; i < s.m; i++ {
		assign(s.n+i, b.rowStat[i])
	}
	if err := s.refactor(); err != nil {
		return false
	}
	return true
}
