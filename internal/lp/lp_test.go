package lp

import (
	"math"
	"math/rand"
	"testing"
)

const eps = 1e-6

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func solveBoth(t *testing.T, p *Problem) (*Solution, *Solution) {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	d, err := p.SolveDualized()
	if err != nil {
		t.Fatalf("SolveDualized: %v", err)
	}
	return s, d
}

func TestTrivialBoundsOnly(t *testing.T) {
	p := NewProblem()
	x := p.AddCol("x", 1, 5, 2)   // min 2x → x = 1
	y := p.AddCol("y", -3, 4, -1) // min -y → y = 4
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.X[x], 1) || !approx(s.X[y], 4) {
		t.Fatalf("x=%v y=%v", s.X[x], s.X[y])
	}
	if !approx(s.Objective, 2*1-4) {
		t.Fatalf("obj=%v", s.Objective)
	}
}

func TestSimple2D(t *testing.T) {
	// max x+y s.t. x+2y ≤ 4, 3x+y ≤ 6, x,y ≥ 0  → x=1.6, y=1.2, obj=2.8.
	p := NewProblem()
	x := p.AddCol("x", 0, Inf, -1)
	y := p.AddCol("y", 0, Inf, -1)
	p.AddLE("r1", 4, Entry{x, 1}, Entry{y, 2})
	p.AddLE("r2", 6, Entry{x, 3}, Entry{y, 1})
	s, d := solveBoth(t, p)
	for _, sol := range []*Solution{s, d} {
		if sol.Status != Optimal {
			t.Fatalf("status = %v", sol.Status)
		}
		if !approx(sol.Objective, -2.8) {
			t.Fatalf("obj = %v, want -2.8", sol.Objective)
		}
		if !approx(sol.X[x], 1.6) || !approx(sol.X[y], 1.2) {
			t.Fatalf("x=%v y=%v", sol.X[x], sol.X[y])
		}
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x+3y s.t. x+y = 10, x ≥ 3, y ≥ 2 → x=8, y=2, obj=22.
	p := NewProblem()
	x := p.AddCol("x", 3, Inf, 2)
	y := p.AddCol("y", 2, Inf, 3)
	p.AddEQ("sum", 10, Entry{x, 1}, Entry{y, 1})
	s, d := solveBoth(t, p)
	for _, sol := range []*Solution{s, d} {
		if sol.Status != Optimal || !approx(sol.Objective, 22) {
			t.Fatalf("status=%v obj=%v", sol.Status, sol.Objective)
		}
		if !approx(sol.X[x], 8) || !approx(sol.X[y], 2) {
			t.Fatalf("x=%v y=%v", sol.X[x], sol.X[y])
		}
	}
}

func TestRangeRow(t *testing.T) {
	// min x s.t. 2 ≤ x + y ≤ 5, 0 ≤ x ≤ 10, 0 ≤ y ≤ 1 → x = 1, y = 1.
	p := NewProblem()
	x := p.AddCol("x", 0, 10, 1)
	y := p.AddCol("y", 0, 1, 0)
	p.AddRow("range", 2, 5, Entry{x, 1}, Entry{y, 1})
	s, d := solveBoth(t, p)
	for _, sol := range []*Solution{s, d} {
		if sol.Status != Optimal || !approx(sol.Objective, 1) {
			t.Fatalf("status=%v obj=%v", sol.Status, sol.Objective)
		}
	}
}

func TestFreeVariable(t *testing.T) {
	// min x² style trap: min -x + y with x free, x ≤ y, y ≤ 3 → x=y=3, obj=0.
	p := NewProblem()
	x := p.AddCol("x", -Inf, Inf, -1)
	y := p.AddCol("y", -Inf, 3, 1)
	p.AddLE("xley", 0, Entry{x, 1}, Entry{y, -1})
	s, d := solveBoth(t, p)
	for _, sol := range []*Solution{s, d} {
		if sol.Status != Optimal || !approx(sol.Objective, 0) {
			t.Fatalf("status=%v obj=%v", sol.Status, sol.Objective)
		}
		// The objective is flat along x = y ≤ 3: any such point is optimal.
		if sol.X[x] > sol.X[y]+eps || sol.X[y] > 3+eps {
			t.Fatalf("infeasible point x=%v y=%v", sol.X[x], sol.X[y])
		}
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddCol("x", 0, 1, 1)
	p.AddGE("big", 5, Entry{x, 1})
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
	d, err := p.SolveDualized()
	if err != nil {
		t.Fatal(err)
	}
	if d.Status != Infeasible {
		t.Fatalf("dualized status = %v, want infeasible", d.Status)
	}
}

func TestInfeasibleConflictingRows(t *testing.T) {
	p := NewProblem()
	x := p.AddCol("x", -Inf, Inf, 0)
	y := p.AddCol("y", -Inf, Inf, 0)
	p.AddGE("a", 4, Entry{x, 1}, Entry{y, 1})
	p.AddLE("b", 1, Entry{x, 1}, Entry{y, 1})
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddCol("x", 0, Inf, -1)
	y := p.AddCol("y", 0, Inf, 0)
	p.AddGE("r", 1, Entry{x, 1}, Entry{y, 1})
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddCol("x", 2, 2, 1)
	y := p.AddCol("y", 0, Inf, 1)
	p.AddGE("r", 5, Entry{x, 1}, Entry{y, 1})
	s, d := solveBoth(t, p)
	for _, sol := range []*Solution{s, d} {
		if sol.Status != Optimal || !approx(sol.Objective, 5) {
			t.Fatalf("status=%v obj=%v", sol.Status, sol.Objective)
		}
		if !approx(sol.X[x], 2) || !approx(sol.X[y], 3) {
			t.Fatalf("x=%v y=%v", sol.X[x], sol.X[y])
		}
	}
}

func TestDegenerateTransportation(t *testing.T) {
	// A classic degenerate transportation problem.
	// Supplies {10, 10}, demands {10, 10}, costs c[i][j].
	p := NewProblem()
	costs := [2][2]float64{{1, 4}, {2, 1}}
	var v [2][2]int
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			v[i][j] = p.AddCol("x", 0, Inf, costs[i][j])
		}
	}
	for i := 0; i < 2; i++ {
		p.AddEQ("supply", 10, Entry{v[i][0], 1}, Entry{v[i][1], 1})
	}
	for j := 0; j < 2; j++ {
		p.AddEQ("demand", 10, Entry{v[0][j], 1}, Entry{v[1][j], 1})
	}
	s, d := solveBoth(t, p)
	for _, sol := range []*Solution{s, d} {
		if sol.Status != Optimal || !approx(sol.Objective, 20) {
			t.Fatalf("status=%v obj=%v want 20", sol.Status, sol.Objective)
		}
	}
}

func TestRowDualSigns(t *testing.T) {
	// min x s.t. x ≥ 2 → dual of the ≥ row is +1 (tight lower bound).
	p := NewProblem()
	x := p.AddCol("x", 0, Inf, 1)
	r := p.AddGE("r", 2, Entry{x, 1})
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.RowDual[r], 1) {
		t.Fatalf("row dual = %v, want 1", s.RowDual[r])
	}

	// max x s.t. x ≤ 3 (posed as min −x) → dual of the ≤ row is −1.
	p2 := NewProblem()
	x2 := p2.AddCol("x", 0, Inf, -1)
	r2 := p2.AddLE("r", 3, Entry{x2, 1})
	s2, err := p2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s2.RowDual[r2], -1) {
		t.Fatalf("row dual = %v, want -1", s2.RowDual[r2])
	}
}

// TestLagrangianIdentity checks c·x* = Σ y_i·rowValue_i + Σ d_j·x_j on a
// nontrivial LP: the identity holds for any basic solution and validates
// the dual extraction used for Benders cuts.
func TestLagrangianIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		p, _ := randomFeasibleLP(rng, 6, 9)
		s, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal {
			continue
		}
		lhs := s.Objective
		rhs := 0.0
		for i := 0; i < p.NumRows(); i++ {
			rhs += s.RowDual[i] * s.RowValue[i]
		}
		for j := 0; j < p.NumCols(); j++ {
			rhs += s.ColDual[j] * s.X[j]
		}
		if !approx(lhs, rhs) {
			t.Fatalf("trial %d: lagrangian identity broken: %v vs %v", trial, lhs, rhs)
		}
	}
}

// randomFeasibleLP builds a random LP guaranteed feasible (a random x0
// within bounds satisfies all rows) and bounded (all variables have finite
// bounds).
func randomFeasibleLP(rng *rand.Rand, m, n int) (*Problem, []float64) {
	p := NewProblem()
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		lb := rng.Float64()*4 - 2
		ub := lb + rng.Float64()*4
		p.AddCol("x", lb, ub, rng.Float64()*4-2)
		x0[j] = lb + rng.Float64()*(ub-lb)
	}
	for i := 0; i < m; i++ {
		var es []Entry
		act := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				c := rng.Float64()*4 - 2
				es = append(es, Entry{j, c})
				act += c * x0[j]
			}
		}
		if len(es) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddLE("r", act+rng.Float64(), es...)
		case 1:
			p.AddGE("r", act-rng.Float64(), es...)
		default:
			p.AddRow("r", act-rng.Float64(), act+rng.Float64(), es...)
		}
	}
	return p, x0
}

// TestPrimalVsDualizedRandom cross-checks the two solution paths on many
// random feasible bounded LPs.
func TestPrimalVsDualizedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(8)
		n := 2 + rng.Intn(8)
		p, _ := randomFeasibleLP(rng, m, n)
		s, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d, err := p.SolveDualized()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != Optimal || d.Status != Optimal {
			t.Fatalf("trial %d: statuses %v / %v", trial, s.Status, d.Status)
		}
		if !approx(s.Objective, d.Objective) {
			t.Fatalf("trial %d: primal obj %v vs dualized %v", trial, s.Objective, d.Objective)
		}
		// The dualized X must be feasible for the original problem.
		checkFeasible(t, p, d.X, trial)
		checkFeasible(t, p, s.X, trial)
	}
}

func checkFeasible(t *testing.T, p *Problem, x []float64, trial int) {
	t.Helper()
	const ftol = 1e-6
	for j := 0; j < p.NumCols(); j++ {
		if x[j] < p.colLB[j]-ftol || x[j] > p.colUB[j]+ftol {
			t.Fatalf("trial %d: x[%d]=%v outside [%v,%v]", trial, j, x[j], p.colLB[j], p.colUB[j])
		}
	}
	for i, row := range p.rows {
		act := 0.0
		for _, e := range row {
			act += e.Coef * x[e.Col]
		}
		if act < p.rowLB[i]-ftol || act > p.rowUB[i]+ftol {
			t.Fatalf("trial %d: row %d activity %v outside [%v,%v]", trial, i, act, p.rowLB[i], p.rowUB[i])
		}
	}
}

// TestMaxFlowLP models max flow on a small graph as an LP and checks the
// known optimum — representative of the tunnel-routing LPs used throughout
// the repository.
func TestMaxFlowLP(t *testing.T) {
	// Graph: s→a (3), s→b (2), a→t (2), b→t (3), a→b (1). Max flow = 5? No:
	// s→a→t carries 2, s→a→b→t carries 1, s→b→t carries 2 → total 5 but
	// s→a has cap 3 and carries 3, s→b carries 2 → max flow = 5.
	p := NewProblem()
	sa := p.AddCol("sa", 0, 3, 0)
	sb := p.AddCol("sb", 0, 2, 0)
	at := p.AddCol("at", 0, 2, 0)
	bt := p.AddCol("bt", 0, 3, 0)
	ab := p.AddCol("ab", 0, 1, 0)
	f := p.AddCol("f", 0, Inf, -1) // maximize total flow
	p.AddEQ("consA", 0, Entry{sa, 1}, Entry{at, -1}, Entry{ab, -1})
	p.AddEQ("consB", 0, Entry{sb, 1}, Entry{ab, 1}, Entry{bt, -1})
	p.AddEQ("src", 0, Entry{sa, 1}, Entry{sb, 1}, Entry{f, -1})
	s, d := solveBoth(t, p)
	for _, sol := range []*Solution{s, d} {
		if sol.Status != Optimal || !approx(sol.Objective, -5) {
			t.Fatalf("status=%v obj=%v want -5", sol.Status, sol.Objective)
		}
	}
}

// TestDuplicateEntries verifies duplicate column coefficients in one row
// are summed.
func TestDuplicateEntries(t *testing.T) {
	p := NewProblem()
	x := p.AddCol("x", 0, Inf, 1)
	p.AddGE("r", 6, Entry{x, 1}, Entry{x, 2}) // effectively 3x ≥ 6
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[x], 2) {
		t.Fatalf("x=%v want 2", s.X[x])
	}
}

// TestManyRowsDualized exercises the row-heavy shape that motivates
// SolveDualized (CVaR-style LPs).
func TestManyRowsDualized(t *testing.T) {
	// min α + Σ_q p_q s_q / (1-β) with s_q ≥ loss_q − α: CVaR of a fixed
	// loss distribution. Optimum: α = VaR_β, objective = CVaR_β.
	losses := []float64{0, 0.1, 0.2, 0.5, 1.0}
	probs := []float64{0.9, 0.04, 0.03, 0.02, 0.01}
	beta := 0.95
	p := NewProblem()
	alpha := p.AddCol("alpha", -Inf, Inf, 1)
	for q := range losses {
		s := p.AddCol("s", 0, Inf, probs[q]/(1-beta))
		p.AddGE("cvar", losses[q], Entry{s, 1}, Entry{alpha, 1})
	}
	// CVaR at 95%: worst 5% mass = {1.0: 0.01, 0.5: 0.02, 0.2: 0.02 of its
	// 0.03} → (0.01·1.0 + 0.02·0.5 + 0.02·0.2)/0.05 = 0.48.
	s, d := solveBoth(t, p)
	for _, sol := range []*Solution{s, d} {
		if sol.Status != Optimal || !approx(sol.Objective, 0.48) {
			t.Fatalf("status=%v obj=%v want 0.48", sol.Status, sol.Objective)
		}
	}
}

func TestIterLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, _ := randomFeasibleLP(rng, 10, 10)
	s, err := p.SolveOpts(Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status == Optimal {
		// A 1-iteration budget can still be optimal for trivial problems;
		// accept but verify feasibility then.
		checkFeasible(t, p, s.X, 0)
	} else if s.Status != IterLimit {
		t.Fatalf("status = %v", s.Status)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem()
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Objective != 0 {
		t.Fatalf("empty problem: %v %v", s.Status, s.Objective)
	}
}

func TestNoRows(t *testing.T) {
	p := NewProblem()
	x := p.AddCol("x", -1, 7, -2)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[x], 7) {
		t.Fatalf("x=%v status=%v", s.X[x], s.Status)
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	p, _ := randomFeasibleLP(rng, 60, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDegenerateManyIdenticalRows: a pathologically degenerate LP (many
// duplicated constraints) must solve in a sane number of pivots — this is
// the regression guard for the long-step phase-1 ratio test and the
// phase-2 cost perturbation, without which CVaR-style formulations stalled
// for tens of thousands of iterations.
func TestDegenerateManyIdenticalRows(t *testing.T) {
	p := NewProblem()
	n := 30
	cols := make([]int, n)
	for j := 0; j < n; j++ {
		cols[j] = p.AddCol("x", 0, Inf, -1)
	}
	// 400 near-identical covering rows plus a shared capacity row.
	for i := 0; i < 400; i++ {
		var es []Entry
		for j := 0; j < n; j++ {
			es = append(es, Entry{cols[j], 1})
		}
		p.AddGE("cover", 1, es...)
	}
	var es []Entry
	for j := 0; j < n; j++ {
		es = append(es, Entry{cols[j], 1})
	}
	p.AddLE("cap", 5, es...)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, -5) {
		t.Fatalf("status=%v obj=%v want -5", s.Status, s.Objective)
	}
	if s.Iterations > 2000 {
		t.Fatalf("degenerate LP took %d iterations", s.Iterations)
	}
}

// Property: scaling all costs by k > 0 scales the optimum by k and keeps
// the argmin (up to ties).
func TestCostScalingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		p, _ := randomFeasibleLP(rng, 8, 10)
		base, err := p.Solve()
		if err != nil || base.Status != Optimal {
			continue
		}
		k := 1 + rng.Float64()*5
		for j := 0; j < p.NumCols(); j++ {
			p.SetCost(j, p.Cost(j)*k)
		}
		scaled, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if scaled.Status != Optimal || !approx(scaled.Objective, k*base.Objective) {
			t.Fatalf("trial %d: scaled obj %v, want %v", trial, scaled.Objective, k*base.Objective)
		}
	}
}
