package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"flexile/internal/obs"
)

// relaxRows loosens every row bound of p by delta, keeping any feasible
// point feasible (and the LP bounded — randomFeasibleLP's columns all have
// finite bounds) while moving the optimum.
func relaxRows(p *Problem, delta float64) {
	for i := 0; i < p.NumRows(); i++ {
		lb, ub := p.rowLB[i], p.rowUB[i]
		if !math.IsInf(lb, -1) {
			lb -= delta
		}
		if !math.IsInf(ub, 1) {
			ub += delta
		}
		p.SetRowBounds(i, lb, ub)
	}
}

// TestPropertyWarmAgreesWithCold: across the random battery, a solve warm-
// started from a previous basis must report the same objective as the cold
// solve of the same problem (within tolerance), both on an unchanged
// problem (the re-solve pattern) and after a bound change (the Benders /
// branch-and-bound pattern), and the warm solve must actually install the
// basis.
func TestPropertyWarmAgreesWithCold(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < propertyTrials; trial++ {
		m := 1 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		p, _ := randomFeasibleLP(rng, m, n)
		cold, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		if cold.Status != Optimal {
			t.Fatalf("trial %d: cold finished %v", trial, cold.Status)
		}
		if cold.WarmStarted {
			t.Fatalf("trial %d: cold solve claims WarmStarted", trial)
		}
		basis := cold.Basis()
		if basis == nil {
			t.Fatalf("trial %d: no basis recorded", trial)
		}

		// Re-solve of the identical problem: must accept the basis and
		// reproduce the objective near-instantly.
		warm, err := p.SolveOpts(Options{StartBasis: basis})
		if err != nil {
			t.Fatalf("trial %d: warm re-solve: %v", trial, err)
		}
		if !warm.WarmStarted {
			t.Fatalf("trial %d: compatible basis was not installed", trial)
		}
		if !approx(warm.Objective, cold.Objective) {
			t.Fatalf("trial %d: warm re-solve obj %v vs cold %v", trial, warm.Objective, cold.Objective)
		}
		if warm.Iterations > cold.Iterations {
			t.Errorf("trial %d: warm re-solve took %d iterations, cold %d", trial, warm.Iterations, cold.Iterations)
		}

		// Bound change: warm and cold solves of the modified LP must agree
		// on the objective, and the warm duals must still certify it.
		relaxRows(p, 0.25)
		coldMod, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: cold modified: %v", trial, err)
		}
		warmMod, err := p.SolveOpts(Options{StartBasis: basis})
		if err != nil {
			t.Fatalf("trial %d: warm modified: %v", trial, err)
		}
		if coldMod.Status != Optimal || warmMod.Status != Optimal {
			t.Fatalf("trial %d: modified statuses cold=%v warm=%v", trial, coldMod.Status, warmMod.Status)
		}
		if !approx(warmMod.Objective, coldMod.Objective) {
			t.Fatalf("trial %d: modified warm obj %v vs cold %v", trial, warmMod.Objective, coldMod.Objective)
		}
		checkFeasible(t, p, warmMod.X, trial)
		if dual := dualObjective(t, trial, p, warmMod); !approx(warmMod.Objective, dual) {
			t.Fatalf("trial %d: warm solve violates strong duality: primal %v, dual %v", trial, warmMod.Objective, dual)
		}
		checkComplementarySlackness(t, trial, p, warmMod)
	}
}

// TestWarmStartRejectedSurfaced: an incompatible start basis must be
// reported — WarmStarted false on the solution and a WarmStartRejected
// increment in the collector — instead of silently falling back.
func TestWarmStartRejectedSurfaced(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p, _ := randomFeasibleLP(rng, 4, 6)
	other, _ := randomFeasibleLP(rng, 3, 5) // different shape
	otherSol, err := other.Solve()
	if err != nil {
		t.Fatal(err)
	}

	col := obs.New()
	ctx := obs.With(context.Background(), col)
	sol, err := p.SolveCtx(ctx, Options{StartBasis: otherSol.Basis()})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.WarmStarted {
		t.Error("incompatible basis reported as WarmStarted")
	}
	snap := col.Snapshot()
	if snap.LP.WarmStartRejected != 1 {
		t.Errorf("WarmStartRejected = %d, want 1", snap.LP.WarmStartRejected)
	}
	if snap.LP.WarmStarts != 0 {
		t.Errorf("WarmStarts = %d, want 0", snap.LP.WarmStarts)
	}

	// The compatible case increments the accepted counter instead.
	sol2, err := p.SolveCtx(ctx, Options{StartBasis: sol.Basis()})
	if err != nil {
		t.Fatal(err)
	}
	if !sol2.WarmStarted {
		t.Error("compatible basis not installed")
	}
	snap = col.Snapshot()
	if snap.LP.WarmStarts != 1 || snap.LP.WarmStartRejected != 1 {
		t.Errorf("counters = %d accepted / %d rejected, want 1/1", snap.LP.WarmStarts, snap.LP.WarmStartRejected)
	}
}

// TestPropertyEtaAgreesWithDense: product-form updates are an internal
// representation change; across the battery the eta path must reach the
// same objective as the dense oracle and produce duals that certify it.
// A tiny RefactorEvery on some trials exercises mid-solve eta collapse.
func TestPropertyEtaAgreesWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < propertyTrials; trial++ {
		m := 1 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		p, _ := randomFeasibleLP(rng, m, n)
		dense, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		opts := Options{EtaUpdates: true}
		if trial%3 == 0 {
			opts.RefactorEvery = 3
		}
		col := obs.New()
		etaSol, err := p.SolveCtx(obs.With(context.Background(), col), opts)
		if err != nil {
			t.Fatalf("trial %d: eta: %v", trial, err)
		}
		if dense.Status != etaSol.Status {
			t.Fatalf("trial %d: status dense=%v eta=%v", trial, dense.Status, etaSol.Status)
		}
		if !approx(dense.Objective, etaSol.Objective) {
			t.Fatalf("trial %d: dense obj %v vs eta obj %v", trial, dense.Objective, etaSol.Objective)
		}
		checkFeasible(t, p, etaSol.X, trial)
		if dual := dualObjective(t, trial, p, etaSol); !approx(etaSol.Objective, dual) {
			t.Fatalf("trial %d: eta solve violates strong duality: primal %v, dual %v", trial, etaSol.Objective, dual)
		}
		checkComplementarySlackness(t, trial, p, etaSol)
		// Every genuine basis change (iterations minus bound flips, which
		// leave the basis untouched) must have produced an eta factor.
		snap := col.Snapshot().LP
		if snap.Pivots-snap.BoundFlips > 0 && snap.EtaPivots == 0 {
			t.Fatalf("trial %d: eta mode recorded no eta pivots over %d basis changes", trial, snap.Pivots-snap.BoundFlips)
		}
	}
}

// TestPropertyBatchBitIdenticalToDirect: the batch solver's contract is
// bit-identity with a fresh Problem solve — same pivots, same primal and
// dual values — across repeated variant solves on a reused workspace.
func TestPropertyBatchBitIdenticalToDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 80; trial++ {
		m := 1 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		p, _ := randomFeasibleLP(rng, m, n)
		bp, err := p.Compile()
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		solver := bp.NewSolver()
		// Three variants of increasing relaxation, interleaved with direct
		// solves of an identically modified fresh problem.
		for round := 0; round < 3; round++ {
			direct, err := p.Solve()
			if err != nil {
				t.Fatalf("trial %d round %d: direct: %v", trial, round, err)
			}
			batch, err := solver.Solve(Variant{}, Options{})
			if err != nil {
				t.Fatalf("trial %d round %d: batch: %v", trial, round, err)
			}
			assertBitIdentical(t, trial, round, direct, batch)

			// The same bounds supplied through the Variant instead of the
			// base problem must also match exactly.
			v := Variant{
				RowLB: append([]float64(nil), p.rowLB...),
				RowUB: append([]float64(nil), p.rowUB...),
				ColLB: append([]float64(nil), p.colLB...),
				ColUB: append([]float64(nil), p.colUB...),
				Cost:  append([]float64(nil), p.obj...),
			}
			batchV, err := solver.Solve(v, Options{})
			if err != nil {
				t.Fatalf("trial %d round %d: batch variant: %v", trial, round, err)
			}
			assertBitIdentical(t, trial, round, direct, batchV)

			relaxRows(p, 0.2)
		}
	}
}

func assertBitIdentical(t *testing.T, trial, round int, a, b *Solution) {
	t.Helper()
	if a.Status != b.Status || a.Objective != b.Objective || a.Iterations != b.Iterations {
		t.Fatalf("trial %d round %d: direct (%v, %v, %d iters) vs batch (%v, %v, %d iters)",
			trial, round, a.Status, a.Objective, a.Iterations, b.Status, b.Objective, b.Iterations)
	}
	for j := range a.X {
		if a.X[j] != b.X[j] {
			t.Fatalf("trial %d round %d: X[%d] direct %v vs batch %v", trial, round, j, a.X[j], b.X[j])
		}
	}
	for i := range a.RowDual {
		if a.RowDual[i] != b.RowDual[i] {
			t.Fatalf("trial %d round %d: RowDual[%d] direct %v vs batch %v", trial, round, i, a.RowDual[i], b.RowDual[i])
		}
	}
	for j := range a.ColDual {
		if a.ColDual[j] != b.ColDual[j] {
			t.Fatalf("trial %d round %d: ColDual[%d] direct %v vs batch %v", trial, round, j, a.ColDual[j], b.ColDual[j])
		}
	}
}

// TestBatchVariantValidation: malformed variants fail cleanly without
// corrupting the reusable workspace.
func TestBatchVariantValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	p, _ := randomFeasibleLP(rng, 4, 6)
	bp, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	solver := bp.NewSolver()
	if _, err := solver.Solve(Variant{RowUB: make([]float64, 1)}, Options{}); err == nil {
		t.Error("wrong-length RowUB accepted")
	}
	bad := append([]float64(nil), p.colLB...)
	bad[0] = p.colUB[0] + 1 // lb > ub
	if _, err := solver.Solve(Variant{ColLB: bad}, Options{}); err == nil {
		t.Error("inconsistent column bounds accepted")
	}
	// The workspace must still produce a correct solve afterwards.
	direct, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	got, err := solver.Solve(Variant{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, 0, 0, direct, got)
}

// TestBatchWarmEtaCombined: the three mechanisms compose — a warm-started,
// eta-updating batch solve still reaches the cold dense objective.
func TestBatchWarmEtaCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 40; trial++ {
		p, _ := randomFeasibleLP(rng, 2+rng.Intn(8), 3+rng.Intn(8))
		cold, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bp, err := p.Compile()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		solver := bp.NewSolver()
		relaxRows(p, 0.3)
		coldMod, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := solver.Solve(Variant{}, Options{StartBasis: cold.Basis(), EtaUpdates: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Status != Optimal || !approx(got.Objective, coldMod.Objective) {
			t.Fatalf("trial %d: combined solve %v obj %v, want %v", trial, got.Status, got.Objective, coldMod.Objective)
		}
		if !got.WarmStarted {
			t.Fatalf("trial %d: basis not installed", trial)
		}
	}
}
