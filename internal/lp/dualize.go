package lp

import (
	"fmt"
	"math"
)

// SolveDualized solves the problem by forming and optimizing its LP dual,
// then recovering the primal solution from the dual multipliers.
//
// The simplex basis has one entry per row, so the cost of a pivot grows
// with the row count. Formulations that bundle many failure scenarios
// (Teavar and the CVaR variants build one row per pair per scenario) have
// far more rows than columns; their duals invert the shape and solve orders
// of magnitude faster. Use this entry point when NumRows ≫ NumCols.
//
// The problem must be feasible and bounded: if the dual reports unbounded
// the primal is infeasible and vice versa, and the returned status reflects
// that mapping. Only Status, Objective, X and RowDual are populated.
func (p *Problem) SolveDualized() (*Solution, error) {
	return p.SolveDualizedOpts(Options{})
}

// SolveDualizedOpts is SolveDualized with explicit solver options.
func (p *Problem) SolveDualizedOpts(opts Options) (*Solution, error) {
	c, err := canonicalize(p)
	if err != nil {
		return nil, err
	}
	d := NewProblem()
	// Dual variable per canonical row (all canonical rows are ≥ rows, so
	// the dual variables are nonnegative); dual objective max b̂·y, posed
	// as min −b̂·y.
	for i, b := range c.rhs {
		d.AddCol(fmt.Sprintf("y%d", i), 0, Inf, -b)
	}
	// Dual row per canonical column: Âᵀy ≤ ĉ.
	colEntries := make([][]Entry, c.ncols)
	for i, row := range c.rows {
		for _, e := range row {
			colEntries[e.Col] = append(colEntries[e.Col], Entry{Col: i, Coef: e.Coef})
		}
	}
	for k := 0; k < c.ncols; k++ {
		d.AddLE(fmt.Sprintf("x%d", k), c.cost[k], colEntries[k]...)
	}
	ds, err := d.SolveOpts(opts)
	if err != nil {
		return nil, err
	}
	sol := &Solution{
		X:       make([]float64, p.NumCols()),
		RowDual: make([]float64, p.NumRows()),
	}
	switch ds.Status {
	case Optimal:
		sol.Status = Optimal
	case Unbounded:
		sol.Status = Infeasible
		return sol, nil
	case Infeasible:
		sol.Status = Unbounded
		return sol, nil
	default:
		sol.Status = ds.Status
		return sol, nil
	}
	// Primal canonical values are the negated duals of the dual's rows.
	xhat := make([]float64, c.ncols)
	for k := 0; k < c.ncols; k++ {
		xhat[k] = -ds.ColDualRow(k)
	}
	c.recover(p, xhat, ds.X, sol)
	obj := 0.0
	for j := 0; j < p.NumCols(); j++ {
		obj += p.obj[j] * sol.X[j]
	}
	sol.Objective = obj
	sol.Iterations = ds.Iterations
	return sol, nil
}

// ColDualRow returns the row dual of row k (alias used by the dualizer for
// readability).
func (s *Solution) ColDualRow(k int) float64 { return s.RowDual[k] }

// canonical holds a problem in the form  min ĉ·x̂  s.t.  Â·x̂ ≥ b̂, x̂ ≥ 0,
// along with the bookkeeping needed to map a canonical solution back to the
// original variables and rows.
type canonical struct {
	ncols int
	cost  []float64
	rows  [][]Entry
	rhs   []float64

	// Per original column: transformation back to original space.
	kind   []colKind
	shift  []float64 // additive shift (lb for shifted, ub for negated)
	canIdx []int     // first canonical index (second is canIdx+1 for split)

	// Per original row: canonical row indices for its lb and ub sides
	// (−1 when that side is infinite).
	lbRow []int
	ubRow []int
}

type colKind int8

const (
	colFixed colKind = iota // x = lb, eliminated
	colShift                // x = lb + x̂
	colNeg                  // x = ub − x̂
	colSplit                // x = x̂⁺ − x̂⁻
)

func canonicalize(p *Problem) (*canonical, error) {
	n := p.NumCols()
	c := &canonical{
		kind:   make([]colKind, n),
		shift:  make([]float64, n),
		canIdx: make([]int, n),
		lbRow:  make([]int, p.NumRows()),
		ubRow:  make([]int, p.NumRows()),
	}
	// Classify columns.
	for j := 0; j < n; j++ {
		lb, ub := p.colLB[j], p.colUB[j]
		switch {
		case lb == ub:
			c.kind[j] = colFixed
			c.shift[j] = lb
			c.canIdx[j] = -1
		case !math.IsInf(lb, -1):
			c.kind[j] = colShift
			c.shift[j] = lb
			c.canIdx[j] = c.ncols
			c.cost = append(c.cost, p.obj[j])
			c.ncols++
		case !math.IsInf(ub, 1):
			c.kind[j] = colNeg
			c.shift[j] = ub
			c.canIdx[j] = c.ncols
			c.cost = append(c.cost, -p.obj[j])
			c.ncols++
		default:
			c.kind[j] = colSplit
			c.canIdx[j] = c.ncols
			c.cost = append(c.cost, p.obj[j], -p.obj[j])
			c.ncols += 2
		}
	}
	// Entries of original column j expressed over canonical columns.
	expand := func(j int, coef float64) []Entry {
		switch c.kind[j] {
		case colFixed:
			return nil
		case colShift:
			return []Entry{{c.canIdx[j], coef}}
		case colNeg:
			return []Entry{{c.canIdx[j], -coef}}
		default:
			return []Entry{{c.canIdx[j], coef}, {c.canIdx[j] + 1, -coef}}
		}
	}
	// Constraint rows.
	for i, row := range p.rows {
		base := 0.0 // contribution of fixed/shifted parts at x̂ = 0
		var can []Entry
		for _, e := range row {
			switch c.kind[e.Col] {
			case colFixed, colShift:
				base += e.Coef * c.shift[e.Col]
			case colNeg:
				base += e.Coef * c.shift[e.Col]
			}
			can = append(can, expand(e.Col, e.Coef)...)
		}
		c.lbRow[i], c.ubRow[i] = -1, -1
		if lb := p.rowLB[i]; !math.IsInf(lb, -1) {
			c.lbRow[i] = len(c.rows)
			c.rows = append(c.rows, can)
			c.rhs = append(c.rhs, lb-base)
		}
		if ub := p.rowUB[i]; !math.IsInf(ub, 1) {
			neg := make([]Entry, len(can))
			for k, e := range can {
				neg[k] = Entry{e.Col, -e.Coef}
			}
			c.ubRow[i] = len(c.rows)
			c.rows = append(c.rows, neg)
			c.rhs = append(c.rhs, base-ub)
		}
	}
	// Upper-bound rows for doubly-bounded shifted columns: −x̂ ≥ −(ub−lb).
	for j := 0; j < n; j++ {
		if c.kind[j] == colShift && !math.IsInf(p.colUB[j], 1) {
			c.rows = append(c.rows, []Entry{{c.canIdx[j], -1}})
			c.rhs = append(c.rhs, -(p.colUB[j] - p.colLB[j]))
		}
	}
	return c, nil
}

// recover maps a canonical solution back into the original variable and row
// spaces. yDual holds the dual-variable values (one per canonical row).
func (c *canonical) recover(p *Problem, xhat, yDual []float64, sol *Solution) {
	for j := 0; j < p.NumCols(); j++ {
		switch c.kind[j] {
		case colFixed:
			sol.X[j] = c.shift[j]
		case colShift:
			sol.X[j] = c.shift[j] + xhat[c.canIdx[j]]
		case colNeg:
			sol.X[j] = c.shift[j] - xhat[c.canIdx[j]]
		default:
			sol.X[j] = xhat[c.canIdx[j]] - xhat[c.canIdx[j]+1]
		}
	}
	for i := 0; i < p.NumRows(); i++ {
		y := 0.0
		if c.lbRow[i] >= 0 {
			y += yDual[c.lbRow[i]]
		}
		if c.ubRow[i] >= 0 {
			y -= yDual[c.ubRow[i]]
		}
		sol.RowDual[i] = y
	}
}

// ShapeHint reports (rows, cols) to help callers decide between Solve and
// SolveDualized: the simplex basis is m×m, so the smaller dimension should
// become the row count.
func (p *Problem) ShapeHint() (rows, cols int) { return p.NumRows(), p.NumCols() }
