package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"flexile/internal/obs"
)

// obsCtx returns a context carrying a fresh collector.
func obsCtx() (context.Context, *obs.Collector) {
	col := obs.New()
	return obs.With(context.Background(), col), col
}

// TestMetricsCountersOnBattery: solving the random battery under a
// collector, the LP counters must reconcile exactly — one Solves/Optimal
// per solve, the phase split summing to the pivot total, and wall-clock
// time recorded.
func TestMetricsCountersOnBattery(t *testing.T) {
	ctx, col := obsCtx()
	rng := rand.New(rand.NewSource(97))
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		p, _ := randomFeasibleLP(rng, 1+rng.Intn(6), 2+rng.Intn(6))
		sol, err := p.SolveCtx(ctx, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
	}
	m := col.Snapshot().LP
	if m.Solves != trials || m.Optimal != trials || m.Errors != 0 {
		t.Fatalf("counters: %+v, want %d solves, all optimal", m, trials)
	}
	if m.Pivots == 0 || m.Phase1Pivots+m.Phase2Pivots != m.Pivots {
		t.Fatalf("pivot split broken: %+v", m)
	}
	if m.SolveNanos <= 0 {
		t.Fatalf("SolveNanos = %d, want > 0", m.SolveNanos)
	}
}

// TestMetricsBlandActivation: Options.Bland counts one activation per
// phase entered under the rule.
func TestMetricsBlandActivation(t *testing.T) {
	ctx, col := obsCtx()
	rng := rand.New(rand.NewSource(101))
	p, _ := randomFeasibleLP(rng, 4, 5)
	if _, err := p.SolveCtx(ctx, Options{Bland: true}); err != nil {
		t.Fatal(err)
	}
	if m := col.Snapshot().LP; m.BlandActivations == 0 {
		t.Fatalf("Bland solve recorded no activations: %+v", m)
	}
}

// TestMetricsStatusSplit: infeasible, unbounded and iteration-limited
// solves land in their own counters, not in Optimal or Errors.
func TestMetricsStatusSplit(t *testing.T) {
	ctx, col := obsCtx()

	inf := NewProblem()
	x := inf.AddCol("x", 0, 1, 1)
	inf.AddGE("lo", 2, Entry{Col: x, Coef: 1}) // x ≥ 2 against ub 1
	if sol, err := inf.SolveCtx(ctx, Options{}); err != nil || sol.Status != Infeasible {
		t.Fatalf("infeasible probe: sol=%+v err=%v", sol, err)
	}

	unb := NewProblem()
	unb.AddCol("x", 0, math.Inf(1), -1) // minimize -x, x unbounded above
	if sol, err := unb.SolveCtx(ctx, Options{}); err != nil || sol.Status != Unbounded {
		t.Fatalf("unbounded probe: sol=%+v err=%v", sol, err)
	}

	rng := rand.New(rand.NewSource(103))
	lim, _ := randomFeasibleLP(rng, 8, 8)
	sol, err := lim.SolveCtx(ctx, Options{MaxIters: 1})
	if err != nil || sol.Status != IterLimit {
		t.Fatalf("iteration-limited probe: sol=%+v err=%v", sol, err)
	}

	m := col.Snapshot().LP
	if m.Solves != 3 || m.Infeasible != 1 || m.Unbounded != 1 || m.IterLimit != 1 || m.Optimal != 0 || m.Errors != 0 {
		t.Fatalf("status split: %+v", m)
	}
}

// TestMetricsErrorPaths: both failure modes — a malformed problem
// rejected before the solve and a pre-canceled context aborting it —
// count as Solves with Errors.
func TestMetricsErrorPaths(t *testing.T) {
	ctx, col := obsCtx()

	bad := NewProblem()
	bad.AddCol("x", 0, 1, 1)
	bad.AddLE("r", 1, Entry{Col: 7, Coef: 1}) // column out of range
	if _, err := bad.SolveCtx(ctx, Options{}); err == nil {
		t.Fatal("malformed problem solved")
	}

	rng := rand.New(rand.NewSource(107))
	p, _ := randomFeasibleLP(rng, 3, 4)
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.SolveCtx(canceled, Options{}); err == nil {
		t.Fatal("canceled solve succeeded")
	}

	m := col.Snapshot().LP
	if m.Solves != 2 || m.Errors != 2 {
		t.Fatalf("error accounting: %+v, want 2 solves, 2 errors", m)
	}
}

// TestMetricsRefactorizations: forcing a refactorization every pivot on a
// problem needing several pivots must record rebuilds.
func TestMetricsRefactorizations(t *testing.T) {
	ctx, col := obsCtx()
	rng := rand.New(rand.NewSource(109))
	p, _ := randomFeasibleLP(rng, 6, 8)
	if _, err := p.SolveCtx(ctx, Options{RefactorEvery: 1}); err != nil {
		t.Fatal(err)
	}
	if m := col.Snapshot().LP; m.Refactorizations == 0 {
		t.Fatalf("RefactorEvery=1 solve recorded no refactorizations: %+v", m)
	}
}
