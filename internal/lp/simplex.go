package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// eta is one product-form factor E of the basis inverse: the elementary
// matrix that differs from the identity only in column r, where it holds
// 1/piv on the diagonal and -w_i/piv off it (w is the ftran column of the
// pivot that produced the factor, with w[r] == piv). Applying E to a vector
// costs O(m); a pivot in eta mode records one factor instead of updating
// the dense m×m inverse.
type eta struct {
	r   int
	piv float64
	w   []float64
}

// Variable status within the simplex tableau.
type varStatus int8

const (
	nonbasicLower varStatus = iota
	nonbasicUpper
	nonbasicFree // free variable held at zero
	basic
)

// simplex is the working state of one solve. Variables are indexed
// 0..n-1 (structural) and n..n+m-1 (logicals, one per row). The system
// solved is F·x = 0 with F = [A | -I]: the logical variable of row i equals
// the row activity a_i·x and carries the row bounds.
type simplex struct {
	p    *Problem
	opts Options

	n, m int // structural columns, rows

	// Sparse structural columns.
	colPtr []int
	colIdx []int32
	colVal []float64

	lb, ub []float64 // bounds per variable (n structural + m logical)
	cost   []float64 // phase-2 costs (structural only; logicals 0)

	status []varStatus
	xval   []float64 // current value of every nonbasic variable
	basis  []int     // basis[i] = variable basic in row position i
	inBpos []int     // inBpos[v] = row position if basic, else -1
	xB     []float64 // values of basic variables

	binv []float64 // dense m×m row-major basis inverse

	// Product-form eta file (Options.EtaUpdates): elementary factors
	// recorded since the last refactorization, so that the true inverse is
	// E_k···E_1·binv. Empty in dense mode and right after every refactor.
	etas []eta

	// scratch
	y  []float64
	w  []float64
	cc []float64

	trueCost []float64 // original costs saved across the perturbation

	pivots        int
	sinceRefactor int

	// Per-solve observability counters. Kept as plain ints in this
	// single-goroutine state and flushed once per solve into the obs
	// collector (see SolveCtx) so the hot loop never touches an atomic.
	phase1Pivots     int
	phase2Pivots     int
	boundFlips       int
	degenPivots      int
	blandActs        int
	refactors        int
	singularRestarts int
	etaPivots        int
	warmAccepted     bool
	warmRejected     bool

	// Cancellation: checked every checkCancelEvery iterations inside run.
	ctx      context.Context
	deadline time.Time // zero = none
}

func newSimplex(p *Problem, opts Options) (*simplex, error) {
	n, m := p.NumCols(), p.NumRows()
	s := &simplex{
		p:    p,
		opts: opts.withDefaults(m, n),
		n:    n,
		m:    m,
	}
	var err error
	s.colPtr, s.colIdx, s.colVal, err = compileColumns(p)
	if err != nil {
		return nil, err
	}
	s.allocate()
	copy(s.lb, p.colLB)
	for i := 0; i < m; i++ {
		s.lb[n+i] = p.rowLB[i]
	}
	copy(s.ub, p.colUB)
	for i := 0; i < m; i++ {
		s.ub[n+i] = p.rowUB[i]
	}
	copy(s.cost, p.obj)
	return s, nil
}

// allocate sizes the per-solve working slices for n columns and m rows.
func (s *simplex) allocate() {
	n, m := s.n, s.m
	s.lb = make([]float64, n+m)
	s.ub = make([]float64, n+m)
	s.cost = make([]float64, n+m)
	s.status = make([]varStatus, n+m)
	s.xval = make([]float64, n+m)
	s.basis = make([]int, m)
	s.inBpos = make([]int, n+m)
	s.xB = make([]float64, m)
	s.binv = make([]float64, m*m)
	s.y = make([]float64, m)
	s.w = make([]float64, m)
	s.cc = make([]float64, n+m)
}

// compileColumns converts the row-wise insertion buffers into compressed
// sparse columns, summing duplicate coefficients. An out-of-range entry
// column is a model-construction bug reported as a validation error, like
// inconsistent bounds.
func compileColumns(p *Problem) (colPtr []int, colIdx []int32, colVal []float64, _ error) {
	n := p.NumCols()
	counts := make([]int, n+1)
	for i, row := range p.rows {
		for _, e := range row {
			if e.Col < 0 || e.Col >= n {
				return nil, nil, nil, fmt.Errorf("lp: row %q entry column %d out of range [0,%d)", p.rowName[i], e.Col, n)
			}
			counts[e.Col+1]++
		}
	}
	for j := 0; j < n; j++ {
		counts[j+1] += counts[j]
	}
	nnz := counts[n]
	idx := make([]int32, nnz)
	val := make([]float64, nnz)
	next := make([]int, n)
	copy(next, counts[:n])
	for i, row := range p.rows {
		for _, e := range row {
			k := next[e.Col]
			idx[k] = int32(i)
			val[k] = e.Coef
			next[e.Col]++
		}
	}
	// Merge duplicates within each column (same row appearing twice).
	ptr := make([]int, n+1)
	outN := 0
	for j := 0; j < n; j++ {
		ptr[j] = outN
		start, end := counts[j], counts[j+1]
		// Rows arrive in insertion order which is ascending row order per
		// AddRow, so duplicates are adjacent only if added to the same row;
		// handle the general case with a small scan.
		for k := start; k < end; k++ {
			r, v := idx[k], val[k]
			merged := false
			for t := ptr[j]; t < outN; t++ {
				if idx[t] == r {
					val[t] += v
					merged = true
					break
				}
			}
			if !merged {
				idx[outN] = r
				val[outN] = v
				outN++
			}
		}
	}
	ptr[n] = outN
	return ptr, idx[:outN], val[:outN], nil
}

// checkCancelEvery is how many simplex iterations pass between
// cancellation/deadline checks: rare enough that the time.Now call is
// noise, frequent enough that a canceled solve stops within microseconds.
const checkCancelEvery = 64

// checkCancel reports the context/deadline error once the solve should
// abort, or nil to continue.
func (s *simplex) checkCancel() error {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return fmt.Errorf("lp: solve canceled: %w", err)
		}
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return fmt.Errorf("lp: solve timed out: %w", context.DeadlineExceeded)
	}
	return nil
}

// initialValue places a nonbasic variable at a sensible bound.
func initialValue(lb, ub float64) (float64, varStatus) {
	switch {
	case lb == ub:
		return lb, nonbasicLower
	case !math.IsInf(lb, -1) && (math.IsInf(ub, 1) || math.Abs(lb) <= math.Abs(ub)):
		return lb, nonbasicLower
	case !math.IsInf(ub, 1):
		return ub, nonbasicUpper
	default:
		return 0, nonbasicFree
	}
}

func (s *simplex) solve() (*Solution, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	// Initial basis: all logicals basic (B = -I), then the warm basis on
	// top when one was supplied and installs cleanly.
	s.resetToLogicalBasis()
	if s.opts.StartBasis != nil {
		if s.installBasis(s.opts.StartBasis) {
			s.warmAccepted = true
		} else {
			// Fall back to the cold start: rebuild the trivial basis. The
			// rejection is surfaced through Solution.WarmStarted and the
			// WarmStartRejected counter rather than silently swallowed.
			s.warmRejected = true
			s.resetToLogicalBasis()
		}
	}

	if s.opts.Bland {
		s.blandActs++
	}
	iters := 0
	sol, err := s.optimize(&iters)
	if errors.Is(err, ErrSingularBasis) {
		// Numerical degradation corrupted the basis; restart once from the
		// pristine logical basis.
		s.singularRestarts++
		s.resetToLogicalBasis()
		sol, err = s.optimize(&iters)
	}
	return sol, err
}

// optimize runs phase 1 then perturbed-and-polished phase 2 from the
// current basis.
func (s *simplex) optimize(iters *int) (*Solution, error) {
	st, err := s.run(1, iters)
	if err != nil {
		return nil, err
	}
	if st == Infeasible {
		return &Solution{Status: Infeasible, Iterations: *iters}, nil
	}
	if st != Optimal { // iteration limit during phase 1
		return &Solution{Status: IterLimit, Iterations: *iters}, nil
	}
	// Phase 2 runs with tiny deterministic cost perturbations: highly
	// degenerate LPs (the CVaR formulations especially) stall for tens of
	// thousands of pivots under unperturbed Dantzig pricing. The
	// perturbation is far below the optimality tolerance per unit of
	// activity; a polish pass with the true costs follows.
	s.perturbCosts()
	st, err = s.run(2, iters)
	if err != nil {
		return nil, err
	}
	switch st {
	case Optimal:
		// Polish with the true costs from the perturbed optimum.
		copy(s.cost, s.trueCost)
		st, err = s.run(2, iters)
		if err != nil {
			return nil, err
		}
	case Unbounded:
		// A flat ray of the true objective can tilt negative under the
		// perturbation; re-run unperturbed to decide.
		copy(s.cost, s.trueCost)
		st, err = s.run(2, iters)
		if err != nil {
			return nil, err
		}
	default:
		copy(s.cost, s.trueCost)
	}
	sol := s.extract(st)
	sol.Iterations = *iters
	return sol, nil
}

// perturbCosts applies a deterministic multiplicative jitter to every
// cost coefficient (including the zero logical costs, which get an
// absolute jitter) to break degenerate ties.
func (s *simplex) perturbCosts() {
	s.trueCost = append(s.trueCost[:0], s.cost...)
	const base = 1e-9
	for j := range s.cost {
		h := uint64(j)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		h ^= h >> 33
		xi := 0.5 + float64(h%1024)/1024 // ∈ [0.5, 1.5)
		s.cost[j] += base * xi * (1 + math.Abs(s.cost[j]))
	}
}

func (s *simplex) validate() error {
	for j := 0; j < s.n; j++ {
		if s.lb[j] > s.ub[j] {
			return fmt.Errorf("lp: column %q has lb %g > ub %g", s.p.colName[j], s.lb[j], s.ub[j])
		}
	}
	// Row bounds live on the logical variables so batch variants are
	// validated the same way as freshly built problems.
	for i := 0; i < s.m; i++ {
		lv := s.n + i
		if s.lb[lv] > s.ub[lv] {
			return fmt.Errorf("lp: row %q has lb %g > ub %g", s.p.rowName[i], s.lb[lv], s.ub[lv])
		}
	}
	return nil
}

// recomputeXB sets xB = -B⁻¹·(Σ_nonbasic F_j·x_j).
func (s *simplex) recomputeXB() {
	m := s.m
	v := make([]float64, m)
	for j := 0; j < s.n; j++ {
		if s.status[j] == basic {
			continue
		}
		x := s.xval[j]
		if x == 0 {
			continue
		}
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			v[s.colIdx[k]] += s.colVal[k] * x
		}
	}
	for i := 0; i < m; i++ {
		lv := s.n + i
		if s.status[lv] != basic {
			v[i] -= s.xval[lv] // logical column is -e_i
		}
	}
	for i := 0; i < m; i++ {
		sum := 0.0
		row := s.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			sum += row[k] * v[k]
		}
		s.xB[i] = sum
	}
	s.applyEtas(s.xB)
	for i := 0; i < m; i++ {
		s.xB[i] = -s.xB[i]
	}
}

// infeasibility returns the total bound violation of basic variables.
func (s *simplex) infeasibility() float64 {
	tot := 0.0
	for i := 0; i < s.m; i++ {
		v := s.basis[i]
		if s.xB[i] > s.ub[v] {
			tot += s.xB[i] - s.ub[v]
		} else if s.xB[i] < s.lb[v] {
			tot += s.lb[v] - s.xB[i]
		}
	}
	return tot
}

// phaseCost fills cc with the active cost vector: phase 1 uses the
// composite infeasibility gradient, phase 2 the true objective.
func (s *simplex) phaseCost(phase int) {
	tol := s.opts.Tol
	if phase == 2 {
		copy(s.cc, s.cost)
		return
	}
	for k := range s.cc {
		s.cc[k] = 0
	}
	for i := 0; i < s.m; i++ {
		v := s.basis[i]
		if s.xB[i] > s.ub[v]+tol {
			s.cc[v] = 1
		} else if s.xB[i] < s.lb[v]-tol {
			s.cc[v] = -1
		}
	}
}

// computeY sets y = cc_B^T · B⁻¹. In eta mode the basic costs are first
// pushed through the transposed eta file, then through the dense base
// inverse; w doubles as scratch (it is rebuilt by the next ftran).
func (s *simplex) computeY() {
	m := s.m
	for k := 0; k < m; k++ {
		s.y[k] = 0
	}
	if len(s.etas) > 0 {
		u := s.w
		for i := 0; i < m; i++ {
			u[i] = s.cc[s.basis[i]]
		}
		s.applyEtasT(u)
		for i := 0; i < m; i++ {
			ui := u[i]
			if ui == 0 {
				continue
			}
			row := s.binv[i*m : i*m+m]
			for k := 0; k < m; k++ {
				s.y[k] += ui * row[k]
			}
		}
		return
	}
	for i := 0; i < m; i++ {
		cb := s.cc[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			s.y[k] += cb * row[k]
		}
	}
}

// reducedCost of a nonbasic variable v: d_v = cc_v − y·F_v.
func (s *simplex) reducedCost(v int) float64 {
	d := s.cc[v]
	if v >= s.n {
		d += s.y[v-s.n] // logical column is -e_i
		return d
	}
	for k := s.colPtr[v]; k < s.colPtr[v+1]; k++ {
		d -= s.y[s.colIdx[k]] * s.colVal[k]
	}
	return d
}

// ftran sets w = B⁻¹·F_q.
func (s *simplex) ftran(q int) {
	m := s.m
	for i := 0; i < m; i++ {
		s.w[i] = 0
	}
	if q >= s.n {
		r := q - s.n
		for i := 0; i < m; i++ {
			s.w[i] = -s.binv[i*m+r]
		}
	} else {
		for k := s.colPtr[q]; k < s.colPtr[q+1]; k++ {
			r := int(s.colIdx[k])
			a := s.colVal[k]
			for i := 0; i < m; i++ {
				s.w[i] += s.binv[i*m+r] * a
			}
		}
	}
	s.applyEtas(s.w)
}

// applyEtas multiplies v by the eta file in recording order:
// v ← E_k···E_1·v. A no-op in dense mode (empty file).
func (s *simplex) applyEtas(v []float64) {
	for i := range s.etas {
		e := &s.etas[i]
		vr := v[e.r] / e.piv
		if vr != 0 {
			for j, wj := range e.w {
				if j != e.r && wj != 0 {
					v[j] -= wj * vr
				}
			}
		}
		v[e.r] = vr
	}
}

// applyEtasT multiplies the row vector u by the eta file in reverse order:
// u ← u·E_k···E_1, the btran counterpart of applyEtas. Only entry r of u
// changes per factor: (u·E)_r = (u_r·(1+piv) − u·w)/piv, using w_r = piv.
func (s *simplex) applyEtasT(u []float64) {
	for k := len(s.etas) - 1; k >= 0; k-- {
		e := &s.etas[k]
		dot := 0.0
		for i, wi := range e.w {
			if wi != 0 {
				dot += u[i] * wi
			}
		}
		u[e.r] = (u[e.r]*(1+e.piv) - dot) / e.piv
	}
}

// run executes simplex iterations for the given phase.
func (s *simplex) run(phase int, iters *int) (Status, error) {
	tol := s.opts.Tol
	dualTol := math.Max(tol, 1e-9)
	bland := s.opts.Bland
	stall := 0
	lastObj := math.Inf(1)

	for {
		if *iters >= s.opts.MaxIters {
			return IterLimit, nil
		}
		if *iters%checkCancelEvery == 0 {
			if err := s.checkCancel(); err != nil {
				return 0, err
			}
		}
		if s.sinceRefactor >= s.opts.RefactorEvery {
			if err := s.refactor(); err != nil {
				return 0, err
			}
		}
		if phase == 1 {
			inf := s.infeasibility()
			if inf <= tol*float64(1+s.m) {
				return Optimal, nil // feasible; caller proceeds to phase 2
			}
			if inf < lastObj-tol {
				lastObj = inf
				stall = 0
			} else {
				stall++
			}
		} else {
			obj := s.currentObjective()
			if obj < lastObj-tol {
				lastObj = obj
				stall = 0
			} else {
				stall++
			}
		}
		if stall > 2000 && !bland {
			bland = true
			s.blandActs++
		}

		s.phaseCost(phase)
		s.computeY()

		q := s.price(dualTol, bland)
		if q < 0 {
			if phase == 1 {
				// No improving direction but still infeasible. Retry once
				// after a refactorization in case of numerical drift.
				if s.sinceRefactor > 0 {
					if err := s.refactor(); err != nil {
						return 0, err
					}
					continue
				}
				return Infeasible, nil
			}
			return Optimal, nil
		}

		dq := s.reducedCost(q)
		dir := 1.0
		if s.status[q] == nonbasicUpper || (s.status[q] == nonbasicFree && dq > 0) {
			dir = -1
		}

		s.ftran(q)

		var t float64
		var r int
		if phase == 1 {
			// Long-step ratio test: the phase-1 objective is piecewise
			// linear along the direction, so keep crossing bound
			// breakpoints while it still decreases. One long-step pivot
			// replaces what can be thousands of degenerate short steps.
			t, r = s.longStepRatio(q, dir, dq)
		} else {
			t, r = s.ratioTest(phase, q, dir)
		}
		if math.IsInf(t, 1) {
			if phase == 1 {
				return 0, errors.New("lp: unbounded phase-1 direction (numerical failure)")
			}
			return Unbounded, nil
		}
		*iters++
		if phase == 1 {
			s.phase1Pivots++
		} else {
			s.phase2Pivots++
		}
		if r < 0 {
			// Bound flip of the entering variable.
			s.boundFlips++
			s.applyStep(t, dir)
			if s.status[q] == nonbasicLower {
				s.status[q] = nonbasicUpper
				s.xval[q] = s.ub[q]
			} else {
				s.status[q] = nonbasicLower
				s.xval[q] = s.lb[q]
			}
			continue
		}
		if t <= tol {
			s.degenPivots++
		}
		s.pivot(q, r, t, dir)
	}
}

func (s *simplex) currentObjective() float64 {
	obj := 0.0
	for j := 0; j < s.n; j++ {
		if s.cost[j] == 0 {
			continue
		}
		if s.status[j] == basic {
			obj += s.cost[j] * s.xB[s.inBpos[j]]
		} else {
			obj += s.cost[j] * s.xval[j]
		}
	}
	return obj
}

// price selects an entering variable, or -1 if none improves.
func (s *simplex) price(dualTol float64, bland bool) int {
	best, bestScore := -1, dualTol
	for v := 0; v < s.n+s.m; v++ {
		st := s.status[v]
		if st == basic {
			continue
		}
		if s.ub[v]-s.lb[v] <= 0 { // fixed variable can never improve
			continue
		}
		d := s.reducedCost(v)
		var score float64
		switch st {
		case nonbasicLower:
			score = -d
		case nonbasicUpper:
			score = d
		case nonbasicFree:
			score = math.Abs(d)
		}
		if score > bestScore {
			if bland {
				return v
			}
			best, bestScore = v, score
		}
	}
	return best
}

// ratioTest finds the maximum step t for entering variable q moving in
// direction dir. It returns (t, r) where r is the leaving basis position,
// or r = -1 for a bound flip of q itself (or, with t = +Inf, an unbounded
// ray).
func (s *simplex) ratioTest(phase, q int, dir float64) (float64, int) {
	tol := s.opts.Tol
	t := math.Inf(1)
	if !math.IsInf(s.lb[q], -1) && !math.IsInf(s.ub[q], 1) {
		t = s.ub[q] - s.lb[q] // bound flip distance
	}
	r := -1
	const pivTol = 1e-10
	bestPiv := 0.0
	for i := 0; i < s.m; i++ {
		wi := s.w[i]
		if math.Abs(wi) <= pivTol {
			continue
		}
		v := s.basis[i]
		delta := -dir * wi // rate of change of xB[i] per unit step
		x := s.xB[i]
		lo, hi := s.lb[v], s.ub[v]
		if phase == 1 {
			// An infeasible basic is limited only by the bound it violates
			// as it moves back toward feasibility; moving further away is
			// priced by the phase-1 cost, not blocked by the ratio test.
			if x > hi+tol {
				lo, hi = hi, math.Inf(1)
			} else if x < lo-tol {
				lo, hi = math.Inf(-1), lo
			}
		}
		var ti float64
		if delta > 0 {
			if math.IsInf(hi, 1) {
				continue
			}
			ti = (hi - x) / delta
		} else {
			if math.IsInf(lo, -1) {
				continue
			}
			ti = (lo - x) / delta
		}
		if ti < 0 {
			ti = 0
		}
		// Accept a strictly smaller ratio, or a near-tie with a larger
		// pivot element (better numerical stability).
		if ti < t-tol || (ti < t+tol && math.Abs(wi) > bestPiv) {
			if ti < t {
				t = ti
			}
			r = i
			bestPiv = math.Abs(wi)
		}
	}
	return t, r
}

// longStepRatio implements the piecewise-linear phase-1 ratio test. Along
// the entering direction, the infeasibility sum decreases at rate |dq|
// initially; every time a basic variable crosses a bound the rate worsens
// by |w_i| (a feasible basic starts violating, or an infeasible one stops
// improving). The optimal step stops at the breakpoint where the rate
// turns nonnegative; the blocking basic there leaves the basis. The
// entering variable's own bound span is one more breakpoint (a bound flip,
// r = −1).
func (s *simplex) longStepRatio(q int, dir, dq float64) (float64, int) {
	tol := s.opts.Tol
	const pivTol = 1e-10
	type breakpoint struct {
		t    float64
		rate float64
		i    int // basis position; -1 = entering variable's own bound
	}
	var bps []breakpoint
	if !math.IsInf(s.lb[q], -1) && !math.IsInf(s.ub[q], 1) {
		bps = append(bps, breakpoint{s.ub[q] - s.lb[q], math.Inf(1), -1})
	}
	for i := 0; i < s.m; i++ {
		wi := s.w[i]
		if math.Abs(wi) <= pivTol {
			continue
		}
		v := s.basis[i]
		delta := -dir * wi // rate of change of xB[i] per unit step
		x := s.xB[i]
		lo, hi := s.lb[v], s.ub[v]
		add := func(bound float64) {
			tk := (bound - x) / delta
			if tk < 0 {
				tk = 0
			}
			bps = append(bps, breakpoint{tk, math.Abs(wi), i})
		}
		switch {
		case x > hi+tol: // infeasible above
			if delta < 0 {
				add(hi) // improvement ends at ub...
				if !math.IsInf(lo, -1) {
					add(lo) // ...and violation restarts at lb
				}
			}
			// moving further up: no breakpoint (priced by the objective)
		case x < lo-tol: // infeasible below
			if delta > 0 {
				add(lo)
				if !math.IsInf(hi, 1) {
					add(hi)
				}
			}
		default: // feasible basic
			if delta > 0 && !math.IsInf(hi, 1) {
				add(hi)
			} else if delta < 0 && !math.IsInf(lo, -1) {
				add(lo)
			}
		}
	}
	if len(bps) == 0 {
		return math.Inf(1), -1
	}
	sort.Slice(bps, func(a, b int) bool { return bps[a].t < bps[b].t })
	rate := -math.Abs(dq) // current directional derivative (improving)
	stop := 0
	for k, bp := range bps {
		stop = k
		rate += bp.rate
		if rate >= -tol {
			break
		}
	}
	// Among breakpoints within a whisker of the stopping step, pivot on
	// the one with the largest |w| — tiny pivots degrade the basis inverse
	// and eventually make refactorization singular.
	bestT, bestR, bestRate := bps[stop].t, bps[stop].i, bps[stop].rate
	for k := 0; k <= stop || (k < len(bps) && bps[k].t <= bestT+1e-9); k++ {
		if k >= len(bps) {
			break
		}
		bp := bps[k]
		if bp.t >= bestT-1e-9 && bp.t <= bestT+1e-9 && bp.i >= 0 && bp.rate > bestRate {
			bestR, bestRate = bp.i, bp.rate
		}
	}
	if bestR == -1 {
		return bestT, -1 // bound flip of the entering variable
	}
	return bestT, bestR
}

// applyStep moves the basic values for a step of size t in direction dir
// along the current ftran column w.
func (s *simplex) applyStep(t, dir float64) {
	if t == 0 {
		return
	}
	for i := 0; i < s.m; i++ {
		s.xB[i] -= dir * t * s.w[i]
	}
}

// pivot replaces basis position r with entering variable q after a step t.
func (s *simplex) pivot(q, r int, t, dir float64) {
	m := s.m
	leaving := s.basis[r]
	enterVal := s.xval[q] + dir*t
	s.applyStep(t, dir)

	// Settle the leaving variable on the nearest finite bound of its
	// post-step value (in phase 1 an infeasible basic lands back on the
	// bound it was violating, which is exactly the nearest one).
	landed := s.xB[r]
	lo, hi := s.lb[leaving], s.ub[leaving]
	switch {
	case !math.IsInf(lo, -1) && (math.IsInf(hi, 1) || math.Abs(landed-lo) <= math.Abs(landed-hi)):
		s.status[leaving] = nonbasicLower
		s.xval[leaving] = lo
	case !math.IsInf(hi, 1):
		s.status[leaving] = nonbasicUpper
		s.xval[leaving] = hi
	default:
		// A free variable never blocks the ratio test; this only happens
		// under numerical noise, in which case zero is the safe resting
		// point.
		s.status[leaving] = nonbasicFree
		s.xval[leaving] = 0
	}
	s.inBpos[leaving] = -1

	s.basis[r] = q
	s.status[q] = basic
	s.inBpos[q] = r
	s.xB[r] = enterVal

	// Update B⁻¹ with the elementary transformation for pivot element w[r].
	// In eta mode the transformation is recorded as a product-form factor
	// (O(m)) instead of applied to the dense inverse (O(m²)); the factor
	// file is collapsed by the next refactorization.
	piv := s.w[r]
	if s.opts.EtaUpdates {
		wc := make([]float64, m)
		copy(wc, s.w)
		s.etas = append(s.etas, eta{r: r, piv: piv, w: wc})
		s.etaPivots++
	} else {
		brow := s.binv[r*m : r*m+m]
		inv := 1 / piv
		for k := 0; k < m; k++ {
			brow[k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			f := s.w[i]
			if f == 0 {
				continue
			}
			row := s.binv[i*m : i*m+m]
			for k := 0; k < m; k++ {
				row[k] -= f * brow[k]
			}
		}
	}
	s.pivots++
	s.sinceRefactor++
}

// refactor rebuilds the dense basis inverse from scratch and recomputes the
// basic variable values.
func (s *simplex) refactor() error {
	m := s.m
	if m == 0 {
		s.sinceRefactor = 0
		return nil
	}
	// Assemble B column-wise into a dense working matrix.
	a := make([]float64, m*m)
	for pos, v := range s.basis {
		if v >= s.n {
			a[(v-s.n)*m+pos] = -1
		} else {
			for k := s.colPtr[v]; k < s.colPtr[v+1]; k++ {
				a[int(s.colIdx[k])*m+pos] = s.colVal[k]
			}
		}
	}
	inv := make([]float64, m*m)
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	// Gauss-Jordan with partial pivoting.
	for c := 0; c < m; c++ {
		p := c
		best := math.Abs(a[c*m+c])
		for i := c + 1; i < m; i++ {
			if v := math.Abs(a[i*m+c]); v > best {
				best, p = v, i
			}
		}
		if best < 1e-12 {
			return ErrSingularBasis
		}
		if p != c {
			swapRows(a, m, p, c)
			swapRows(inv, m, p, c)
		}
		pv := a[c*m+c]
		invPv := 1 / pv
		for k := 0; k < m; k++ {
			a[c*m+k] *= invPv
			inv[c*m+k] *= invPv
		}
		for i := 0; i < m; i++ {
			if i == c {
				continue
			}
			f := a[i*m+c]
			if f == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				a[i*m+k] -= f * a[c*m+k]
				inv[i*m+k] -= f * inv[c*m+k]
			}
		}
	}
	copy(s.binv, inv)
	s.etas = s.etas[:0]
	s.refactors++
	s.sinceRefactor = 0
	s.recomputeXB()
	return nil
}

// resetToLogicalBasis rebuilds the trivial basis (all logicals basic,
// structurals at their initial bounds) — the recovery point after numerical
// failure.
func (s *simplex) resetToLogicalBasis() {
	n, m := s.n, s.m
	for v := 0; v < n+m; v++ {
		s.inBpos[v] = -1
	}
	for j := 0; j < n; j++ {
		s.xval[j], s.status[j] = initialValue(s.lb[j], s.ub[j])
	}
	for i := 0; i < m; i++ {
		v := n + i
		s.basis[i] = v
		s.status[v] = basic
		s.inBpos[v] = i
	}
	for i := range s.binv {
		s.binv[i] = 0
	}
	for i := 0; i < m; i++ {
		s.binv[i*m+i] = -1
	}
	s.etas = s.etas[:0]
	s.sinceRefactor = 0
	s.recomputeXB()
}

func swapRows(a []float64, m, i, j int) {
	ri := a[i*m : i*m+m]
	rj := a[j*m : j*m+m]
	for k := 0; k < m; k++ {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// extract builds the public solution from the final basis.
func (s *simplex) extract(st Status) *Solution {
	n, m := s.n, s.m
	sol := &Solution{
		Status:   st,
		X:        make([]float64, n),
		RowDual:  make([]float64, m),
		ColDual:  make([]float64, n),
		RowValue: make([]float64, m),
	}
	for j := 0; j < n; j++ {
		if s.status[j] == basic {
			sol.X[j] = s.xB[s.inBpos[j]]
		} else {
			sol.X[j] = s.xval[j]
		}
	}
	for i := 0; i < m; i++ {
		lv := n + i
		if s.status[lv] == basic {
			sol.RowValue[i] = s.xB[s.inBpos[lv]]
		} else {
			sol.RowValue[i] = s.xval[lv]
		}
	}
	copy(s.cc, s.cost)
	s.computeY()
	for i := 0; i < m; i++ {
		sol.RowDual[i] = s.y[i]
	}
	for j := 0; j < n; j++ {
		if s.status[j] == basic {
			sol.ColDual[j] = 0
		} else {
			sol.ColDual[j] = s.reducedCost(j)
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += s.cost[j] * sol.X[j]
	}
	sol.Objective = obj
	sol.WarmStarted = s.warmAccepted
	sol.basis = s.snapshotBasis()
	return sol
}
