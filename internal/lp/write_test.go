package lp

import (
	"strings"
	"testing"
)

func TestWriteLPFormat(t *testing.T) {
	p := NewProblem()
	x := p.AddCol("x", 0, 4, 2)
	y := p.AddCol("y[1]", -Inf, Inf, -1)
	z := p.AddCol("z", 1, 1, 0)
	p.AddLE("cap", 10, Entry{x, 1}, Entry{y, 3})
	p.AddGE("dem", 2, Entry{x, 1}, Entry{y, -1})
	p.AddRow("rng", 1, 5, Entry{x, 2})
	p.AddEQ("eq", 7, Entry{y, 1}, Entry{z, 1})
	var b strings.Builder
	if err := p.WriteLP(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Minimize", "Subject To", "Bounds", "End",
		"<= 10", ">= 2", ">= 1", "<= 5", "= 7",
		"c1_y_1_ free", "c2_z = 1", "0 <= c0_x <= 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("LP output missing %q:\n%s", want, out)
		}
	}
	// Negative objective coefficient renders with a minus.
	if !strings.Contains(out, "- 1 c1_y_1_") {
		t.Fatalf("objective term rendering wrong:\n%s", out)
	}
}

func TestWriteLPEmptyObjective(t *testing.T) {
	p := NewProblem()
	p.AddCol("x", 0, 1, 0)
	p.AddGE("r", 0.5, Entry{0, 1})
	var b strings.Builder
	if err := p.WriteLP(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0 c0_x") {
		t.Fatalf("zero objective placeholder missing:\n%s", b.String())
	}
}

func TestWriteLPDuplicateMerge(t *testing.T) {
	p := NewProblem()
	x := p.AddCol("x", 0, Inf, 1)
	p.AddGE("r", 6, Entry{x, 1}, Entry{x, 2})
	var b strings.Builder
	if err := p.WriteLP(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "3 c0_x") {
		t.Fatalf("duplicate entries not merged:\n%s", b.String())
	}
}
