// Package lp implements a linear-programming solver based on the revised
// simplex method with bounded variables.
//
// The solver handles problems of the form
//
//	minimize    c·x
//	subject to  rowLB_i ≤ a_i·x ≤ rowUB_i   for every row i
//	            colLB_j ≤ x_j   ≤ colUB_j   for every column j
//
// Range rows subsume ≤, ≥ and = constraints. The implementation keeps an
// explicit dense basis inverse that is updated in O(m²) per pivot and
// refactorized periodically for numerical stability, with sparse column
// storage for the constraint matrix. Both primal values and row duals /
// reduced costs are reported, which is what the Benders-style decomposition
// in the flexile scheme needs for cut generation.
//
// Everything is deterministic: no randomized pivoting is used.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"flexile/internal/obs"
)

// ErrSingularBasis reports that numerical degradation made the basis
// singular beyond what the internal logical-basis restart could repair.
// Callers running a retry policy (the flexile decomposition's degraded
// mode) match it with errors.Is and re-solve with hardened settings.
var ErrSingularBasis = errors.New("lp: singular basis during refactorization")

// ErrIterLimit is a sentinel for callers that treat the IterLimit status
// as a failure: the solver itself reports iteration exhaustion through
// Solution.Status, but layers that require an Optimal solve (the flexile
// subproblems) wrap this error so retry policies can classify it.
var ErrIterLimit = errors.New("lp: iteration limit exhausted")

// Inf is the canonical unbounded value for row and column bounds.
var Inf = math.Inf(1)

// Entry is a single nonzero coefficient of a row.
type Entry struct {
	Col  int
	Coef float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create instances with NewProblem.
type Problem struct {
	// Objective sense is always minimize; use negated costs to maximize.
	obj     []float64
	colLB   []float64
	colUB   []float64
	colName []string

	rowLB   []float64
	rowUB   []float64
	rowName []string

	// Sparse column-wise storage of the constraint matrix: for column j,
	// rows colIdx[colPtr[j]:colPtr[j+1]] hold values colVal[...]. Built
	// lazily from the row-wise insertion buffers at solve time.
	rows [][]Entry
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem {
	return &Problem{}
}

// AddCol appends a column (variable) with the given bounds and objective
// coefficient and returns its index. lb may be -Inf and ub +Inf.
func (p *Problem) AddCol(name string, lb, ub, cost float64) int {
	p.obj = append(p.obj, cost)
	p.colLB = append(p.colLB, lb)
	p.colUB = append(p.colUB, ub)
	p.colName = append(p.colName, name)
	return len(p.obj) - 1
}

// SetCost overrides the objective coefficient of column j.
func (p *Problem) SetCost(j int, cost float64) { p.obj[j] = cost }

// Cost returns the objective coefficient of column j.
func (p *Problem) Cost(j int) float64 { return p.obj[j] }

// SetColBounds overrides the bounds of column j.
func (p *Problem) SetColBounds(j int, lb, ub float64) {
	p.colLB[j] = lb
	p.colUB[j] = ub
}

// ColLB returns the lower bound of column j.
func (p *Problem) ColLB(j int) float64 { return p.colLB[j] }

// ColUB returns the upper bound of column j.
func (p *Problem) ColUB(j int) float64 { return p.colUB[j] }

// AddRow appends a range constraint lb ≤ Σ entries ≤ ub and returns its
// index. Entries with duplicate column indices are summed.
func (p *Problem) AddRow(name string, lb, ub float64, entries ...Entry) int {
	row := make([]Entry, 0, len(entries))
	row = append(row, entries...)
	p.rows = append(p.rows, row)
	p.rowLB = append(p.rowLB, lb)
	p.rowUB = append(p.rowUB, ub)
	p.rowName = append(p.rowName, name)
	return len(p.rows) - 1
}

// AddLE appends Σ entries ≤ ub.
func (p *Problem) AddLE(name string, ub float64, entries ...Entry) int {
	return p.AddRow(name, -Inf, ub, entries...)
}

// AddGE appends Σ entries ≥ lb.
func (p *Problem) AddGE(name string, lb float64, entries ...Entry) int {
	return p.AddRow(name, lb, Inf, entries...)
}

// AddEQ appends Σ entries = b.
func (p *Problem) AddEQ(name string, b float64, entries ...Entry) int {
	return p.AddRow(name, b, b, entries...)
}

// SetRowBounds overrides the bounds of row i.
func (p *Problem) SetRowBounds(i int, lb, ub float64) {
	p.rowLB[i] = lb
	p.rowUB[i] = ub
}

// NumCols reports the number of structural variables.
func (p *Problem) NumCols() int { return len(p.obj) }

// NumRows reports the number of constraints.
func (p *Problem) NumRows() int { return len(p.rows) }

// ColName returns the name given to column j.
func (p *Problem) ColName(j int) string { return p.colName[j] }

// RowName returns the name given to row i.
func (p *Problem) RowName(i int) string { return p.rowName[i] }

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies all constraints and bounds.
	Infeasible
	// Unbounded means the objective can decrease without limit.
	Unbounded
	// IterLimit means the iteration budget was exhausted before proving
	// optimality; the reported solution is the best basis reached.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution holds the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	// X has one primal value per column.
	X []float64
	// RowDual has one dual multiplier per row (the simplex multiplier y_i).
	// For a minimization problem, y_i ≥ 0 on binding ≥-rows and y_i ≤ 0 on
	// binding ≤-rows.
	RowDual []float64
	// ColDual has the reduced cost of every column at the final basis.
	ColDual []float64
	// RowValue has the final activity a_i·x of every row.
	RowValue []float64
	// Iterations is the total simplex pivot count across both phases.
	Iterations int
	// WarmStarted reports whether Options.StartBasis was actually
	// installed: false when no start basis was given, and — the case
	// callers care about — when one was given but rejected as incompatible
	// (wrong shape, wrong basic count, or a singular basic set). Rejection
	// also increments the obs WarmStartRejected counter, so silent
	// cache-miss storms show up in /metrics.
	WarmStarted bool

	basis *Basis
}

// Options tunes the solver.
type Options struct {
	// MaxIters bounds total pivots; 0 means automatic (scales with size).
	MaxIters int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-9.
	Tol float64
	// RefactorEvery forces a refactorization of the basis inverse after
	// this many pivots; 0 means automatic.
	RefactorEvery int
	// StartBasis warm-starts the solve from a basis recorded by a previous
	// Solution.Basis() on a problem with the same rows and columns
	// (typically with modified bounds, the branch-and-bound pattern). An
	// incompatible basis is ignored.
	StartBasis *Basis
	// Timeout bounds the wall-clock time of one solve; 0 means unlimited.
	// The deadline is checked every few pivots, so an expired solve returns
	// context.DeadlineExceeded (wrapped) within a handful of iterations.
	Timeout time.Duration
	// Bland starts every phase under Bland's rule immediately instead of
	// waiting for a stall, trading speed for guaranteed anti-cycling — the
	// hardened setting retry policies use after a numerical failure.
	Bland bool
	// EtaUpdates enables product-form (eta-file) basis updates: each pivot
	// records an O(m) elementary eta factor instead of performing the O(m²)
	// dense inverse update, and ftran/btran apply the eta file on top of the
	// last refactorized inverse. Periodic refactorization (RefactorEvery)
	// collapses the file, bounding its length. Results agree with the dense
	// path to solver tolerance but are not bit-identical (floating-point
	// operations associate differently), so the dense path remains the
	// default oracle; enable this for large instances where the per-pivot
	// O(m²) dominates.
	EtaUpdates bool
}

func (o Options) withDefaults(m, n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.MaxIters == 0 {
		o.MaxIters = 2000 + 40*(m+n)
	}
	if o.RefactorEvery == 0 {
		o.RefactorEvery = 120
	}
	return o
}

// Solve optimizes the problem with default options.
func (p *Problem) Solve() (*Solution, error) { return p.SolveOpts(Options{}) }

// SolveOpts optimizes the problem with the given options.
func (p *Problem) SolveOpts(opts Options) (*Solution, error) {
	return p.SolveCtx(context.Background(), opts)
}

// SolveCtx optimizes the problem under a context: cancellation or an
// expired deadline (the context's or Options.Timeout, whichever is
// sooner) aborts the simplex within a few pivots and returns the context
// error wrapped. A nil ctx is treated as context.Background().
func (p *Problem) SolveCtx(ctx context.Context, opts Options) (*Solution, error) {
	col := obs.From(ctx)
	var start time.Time
	if col != nil {
		start = time.Now()
	}
	s, err := newSimplex(p, opts)
	if err != nil {
		if col != nil {
			col.AddLP(obs.LPMetrics{Solves: 1, Errors: 1})
		}
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.ctx = ctx
	if opts.Timeout > 0 {
		s.deadline = time.Now().Add(opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (s.deadline.IsZero() || d.Before(s.deadline)) {
		s.deadline = d
	}
	sol, err := s.solve()
	if col != nil {
		elapsed := time.Since(start)
		col.AddLP(s.metrics(sol, err, elapsed))
		col.ObserveLatency(obs.LatLPSolve, elapsed)
	}
	return sol, err
}

// metrics packages the solve's counters for a one-shot collector flush.
func (s *simplex) metrics(sol *Solution, err error, elapsed time.Duration) obs.LPMetrics {
	d := obs.LPMetrics{
		Solves:           1,
		Pivots:           int64(s.phase1Pivots + s.phase2Pivots),
		Phase1Pivots:     int64(s.phase1Pivots),
		Phase2Pivots:     int64(s.phase2Pivots),
		BoundFlips:       int64(s.boundFlips),
		DegeneratePivots: int64(s.degenPivots),
		Refactorizations: int64(s.refactors),
		BlandActivations: int64(s.blandActs),
		SingularRestarts: int64(s.singularRestarts),
		EtaPivots:        int64(s.etaPivots),
		SolveNanos:       elapsed.Nanoseconds(),
	}
	if s.warmAccepted {
		d.WarmStarts = 1
	}
	if s.warmRejected {
		d.WarmStartRejected = 1
	}
	switch {
	case err != nil:
		d.Errors = 1
	case sol.Status == Optimal:
		d.Optimal = 1
	case sol.Status == Infeasible:
		d.Infeasible = 1
	case sol.Status == Unbounded:
		d.Unbounded = 1
	case sol.Status == IterLimit:
		d.IterLimit = 1
	}
	return d
}
