// Package faultinject is a seeded, deterministic fault injector for the
// scenario-parallel solve engine. Tests wrap it around the per-worker LP
// solver of the flexile offline decomposition to force every failure class
// the engine must survive — a singular basis, iteration-limit exhaustion,
// a worker panic, and an artificially slow solve that trips timeouts —
// without depending on rare numerical accidents.
//
// Determinism contract: whether a fault fires, and which kind, depends
// ONLY on (seed, item, attempt). It never depends on the worker id, the
// wall clock, or the order in which workers drain the queue. Consequently
// the same faults fire for any worker count, and the degraded results of
// a faulted run are bit-for-bit identical across worker counts — the same
// property PR 1 established for fault-free runs.
//
// The injected errors wrap the lp package's sentinels (lp.ErrSingularBasis,
// lp.ErrIterLimit) so the decomposition's retry policy classifies them with
// errors.Is exactly as it classifies organic failures.
package faultinject

import (
	"fmt"
	"sync"
	"time"

	"flexile/internal/lp"
)

// Kind is a class of injected failure.
type Kind int

const (
	// SingularBasis injects an error wrapping lp.ErrSingularBasis — the
	// numerically-degraded refactorization failure, which the retry policy
	// treats as retryable with hardened settings.
	SingularBasis Kind = iota
	// IterLimit injects an error wrapping lp.ErrIterLimit — iteration
	// budget exhaustion, also retryable.
	IterLimit
	// Panic makes the hook panic, exercising the pool's recover path.
	// Panics are never retried: the scenario is skipped directly.
	Panic
	// Slow makes the hook sleep (SlowFor) before succeeding, exercising
	// deadline and cancellation paths. Slow alone injects no error.
	Slow
)

func (k Kind) String() string {
	switch k {
	case SingularBasis:
		return "singular-basis"
	case IterLimit:
		return "iter-limit"
	case Panic:
		return "panic"
	case Slow:
		return "slow"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Injector decides, per (item, attempt), whether to inject a fault.
// The zero value injects nothing. An Injector is safe for concurrent use.
type Injector struct {
	seed  uint64
	rate  float64
	kinds []Kind

	// script overrides the seeded decision for specific items: script[item]
	// lists the fault to fire on attempt 0, 1, ... (entries beyond the list
	// mean no fault, so retries eventually succeed unless scripted again).
	script map[int][]Kind

	// SlowFor is the sleep applied by the Slow kind; 0 means 20ms.
	SlowFor time.Duration

	mu    sync.Mutex
	fired map[Kind]int
	calls int
}

// New returns a seeded injector that fires a fault on each (item, attempt)
// with probability rate, cycling deterministically through kinds (all four
// when empty). The decision is a pure function of (seed, item, attempt).
func New(seed uint64, rate float64, kinds ...Kind) *Injector {
	if len(kinds) == 0 {
		kinds = []Kind{SingularBasis, IterLimit, Panic, Slow}
	}
	return &Injector{seed: seed, rate: rate, kinds: kinds}
}

// Script returns an injector that fires exactly the scripted faults:
// script[item][attempt] is the kind injected on that attempt of that item;
// attempts beyond the scripted list succeed. Items absent from the map are
// never faulted. Scripted injection is what the recovery-path tests use to
// hit each failure class precisely.
func Script(script map[int][]Kind) *Injector {
	return &Injector{script: script}
}

// splitmix64 is the usual 64-bit finalizer; good avalanche, no allocation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide returns the kind to inject for (item, attempt), or (0, false).
func (j *Injector) decide(item, attempt int) (Kind, bool) {
	if j.script != nil {
		kinds, ok := j.script[item]
		if !ok || attempt >= len(kinds) {
			return 0, false
		}
		return kinds[attempt], true
	}
	if j.rate <= 0 {
		return 0, false
	}
	h := splitmix64(j.seed ^ splitmix64(uint64(item)<<20|uint64(attempt)))
	// Top 53 bits → uniform in [0, 1).
	if float64(h>>11)/(1<<53) >= j.rate {
		return 0, false
	}
	return j.kinds[h%uint64(len(j.kinds))], true
}

// Hook is the injection point: call it from the per-worker solver before
// the real LP solve of (item, attempt). It returns a non-nil error (or
// panics, for the Panic kind) when a fault fires. A nil *Injector is a
// no-op, so callers can thread the hook unconditionally.
func (j *Injector) Hook(item, attempt int) error {
	if j == nil {
		return nil
	}
	kind, fire := j.decide(item, attempt)
	if !fire {
		j.mu.Lock()
		j.calls++
		j.mu.Unlock()
		return nil
	}
	j.mu.Lock()
	j.calls++
	if j.fired == nil {
		j.fired = make(map[Kind]int)
	}
	j.fired[kind]++
	j.mu.Unlock()
	switch kind {
	case SingularBasis:
		return fmt.Errorf("faultinject: item %d attempt %d: %w", item, attempt, lp.ErrSingularBasis)
	case IterLimit:
		return fmt.Errorf("faultinject: item %d attempt %d: %w", item, attempt, lp.ErrIterLimit)
	case Panic:
		panic(fmt.Sprintf("faultinject: forced panic on item %d attempt %d", item, attempt))
	case Slow:
		d := j.SlowFor
		if d == 0 {
			d = 20 * time.Millisecond
		}
		time.Sleep(d)
		return nil
	}
	return nil
}

// Fired reports how many faults of each kind have fired so far.
func (j *Injector) Fired() map[Kind]int {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[Kind]int, len(j.fired))
	for k, v := range j.fired {
		out[k] = v
	}
	return out
}

// Calls reports the total number of Hook invocations observed.
func (j *Injector) Calls() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.calls
}
