package faultinject

import (
	"errors"
	"testing"

	"flexile/internal/lp"
)

// Scripted faults must fire exactly as written, wrap the lp sentinels so
// errors.Is classification works, and stop after the scripted attempts.
func TestFaultScriptExactAndClassifiable(t *testing.T) {
	inj := Script(map[int][]Kind{
		3: {SingularBasis, IterLimit},
		7: {Panic},
	})
	if err := inj.Hook(0, 0); err != nil {
		t.Fatalf("unscripted item faulted: %v", err)
	}
	if err := inj.Hook(3, 0); !errors.Is(err, lp.ErrSingularBasis) {
		t.Fatalf("item 3 attempt 0: got %v, want ErrSingularBasis", err)
	}
	if err := inj.Hook(3, 1); !errors.Is(err, lp.ErrIterLimit) {
		t.Fatalf("item 3 attempt 1: got %v, want ErrIterLimit", err)
	}
	if err := inj.Hook(3, 2); err != nil {
		t.Fatalf("item 3 attempt 2 should succeed, got %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("item 7 attempt 0: want panic")
			}
		}()
		inj.Hook(7, 0)
	}()
	fired := inj.Fired()
	if fired[SingularBasis] != 1 || fired[IterLimit] != 1 || fired[Panic] != 1 {
		t.Fatalf("fired counts: %v", fired)
	}
}

// Seeded decisions must be a pure function of (seed, item, attempt):
// identical across repeated queries and across query order, so fault
// behavior cannot depend on worker count or scheduling.
func TestFaultSeededDeterministicAcrossOrder(t *testing.T) {
	const n = 200
	record := func(order []int) map[int]Kind {
		inj := New(42, 0.3, SingularBasis, IterLimit)
		got := make(map[int]Kind)
		for _, i := range order {
			if k, fire := inj.decide(i, 0); fire {
				got[i] = k
			}
		}
		return got
	}
	fwd := make([]int, n)
	rev := make([]int, n)
	for i := 0; i < n; i++ {
		fwd[i] = i
		rev[i] = n - 1 - i
	}
	a, b := record(fwd), record(rev)
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 200 items fired nothing; hash is broken")
	}
	if len(a) != len(b) {
		t.Fatalf("fired %d forward vs %d reverse", len(a), len(b))
	}
	for i, k := range a {
		if b[i] != k {
			t.Fatalf("item %d: %v forward vs %v reverse", i, k, b[i])
		}
	}
	// A different attempt index must be an independent decision stream.
	inj := New(42, 0.3, SingularBasis, IterLimit)
	same := true
	for i := 0; i < n; i++ {
		_, f0 := inj.decide(i, 0)
		_, f1 := inj.decide(i, 1)
		if f0 != f1 {
			same = false
		}
	}
	if same {
		t.Fatal("attempt index does not influence decisions")
	}
}

// A nil injector must be a safe no-op so callers thread it unconditionally.
func TestFaultNilInjectorNoOp(t *testing.T) {
	var inj *Injector
	if err := inj.Hook(5, 0); err != nil {
		t.Fatal(err)
	}
	if inj.Fired() != nil || inj.Calls() != 0 {
		t.Fatal("nil injector reported activity")
	}
}
