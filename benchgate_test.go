// The warm-start performance gate: the PR-level claim that the opt-in
// warm-started, batched offline solve (DesignOptions.WarmStart) is at
// least 2× faster wall-clock than the default cold solve on a medium
// workload. BenchmarkOfflineWarm reports the ratio into the BENCH_*.json
// trajectory on every bench run; TestBenchGateWarmSpeedup turns the same
// measurement into a hard pass/fail, gated behind BENCHGATE=1 (run it via
// `make benchgate`) because timing assertions do not belong in the default
// `go test ./...` battery.
package flexile_test

import (
	"os"
	"testing"
	"time"

	"flexile"
)

// warmGateInstance is the gate workload: the IBM topology (§6's mid-size
// network) with gravity demands scaled 1.5×. The scaling pushes the
// scenario LPs away from their trivial all-demands-met optimum, so
// scenario-LP pivot work — the thing warm starts and the compiled batch
// path eliminate — dominates the solve. At base demands the decomposition
// converges almost immediately and the fixed master/setup cost caps the
// measurable gain; at 2× and beyond the master MIP dominates instead.
func warmGateInstance(tb testing.TB) *flexile.Instance {
	inst, err := tinyCfg().SingleClass("IBM")
	if err != nil {
		tb.Fatal(err)
	}
	inst.ScaleDemands(1.5)
	return inst
}

// BenchmarkOfflineWarm times the warm-started batched solve and reports
// the wall-clock speedup over one cold (default-options) run of the same
// workload as warm-speedup-x. Workers is pinned to 1 so the ratio
// measures pivot savings, not scheduling.
func BenchmarkOfflineWarm(b *testing.B) {
	inst := warmGateInstance(b)
	coldStart := time.Now()
	if _, err := flexile.Design(inst, flexile.DesignOptions{Workers: 1}); err != nil {
		b.Fatal(err)
	}
	cold := time.Since(coldStart)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flexile.Design(inst, flexile.DesignOptions{Workers: 1, WarmStart: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if warm := b.Elapsed() / time.Duration(b.N); warm > 0 {
		b.ReportMetric(cold.Seconds()/warm.Seconds(), "warm-speedup-x")
	}
}

// TestBenchGateWarmSpeedup fails when the warm-started solve loses its 2×
// advantage over the cold solve. Min-of-3 on both sides filters scheduler
// noise; the measured ratio on the reference container is ~2.2×.
func TestBenchGateWarmSpeedup(t *testing.T) {
	if os.Getenv("BENCHGATE") == "" {
		t.Skip("timing gate; run via `make benchgate` (BENCHGATE=1)")
	}
	inst := warmGateInstance(t)
	minRun := func(o flexile.DesignOptions) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			if _, err := flexile.Design(inst, o); err != nil {
				t.Fatal(err)
			}
			if e := time.Since(start); e < best {
				best = e
			}
		}
		return best
	}
	cold := minRun(flexile.DesignOptions{Workers: 1})
	warm := minRun(flexile.DesignOptions{Workers: 1, WarmStart: true})
	speedup := cold.Seconds() / warm.Seconds()
	t.Logf("cold %v, warm %v: %.2fx", cold, warm, speedup)
	if speedup < 2.0 {
		t.Fatalf("warm-start speedup %.2fx below the 2x gate (cold %v, warm %v)", speedup, cold, warm)
	}
}
